package shard

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"antlayer/internal/dag"
	"antlayer/internal/island"
)

// ErrNoWorkers reports a distributed run attempted with an empty fleet.
var ErrNoWorkers = errors.New("shard: no workers registered")

// errWorkerFailure tags run errors attributable to a worker (connection
// died, protocol violation, worker-side failure); RunIsland expels the
// worker and retries on the survivors — the partition invariance makes
// the retry byte-identical, so a failure costs time, never answers.
var errWorkerFailure = errors.New("shard: worker failure")

// handshakeTimeout bounds how long an accepted connection may take to say
// hello, so a port-scanner cannot hold an accept slot open.
const handshakeTimeout = 10 * time.Second

// defaultHeartbeatTimeout is how long a worker may go silent before the
// liveness reaper expels it. Workers heartbeat every 2s by default, so
// the default tolerates four missed beats.
const defaultHeartbeatTimeout = 10 * time.Second

// CoordinatorConfig tunes a Coordinator. The zero value is usable.
type CoordinatorConfig struct {
	// HeartbeatTimeout is how long a worker may go without sending any
	// frame (heartbeats included) before the liveness reaper expels it —
	// the defence against workers that die without closing their
	// connection (network partition, frozen host). 0 means the default
	// (10s); negative disables liveness expulsion.
	HeartbeatTimeout time.Duration
	// Log receives registration and run-lifecycle lines. Nil discards.
	Log *log.Logger
}

// readResult is one routed frame (or the read error that ended the
// connection) handed from a worker's reader goroutine to the run that
// owns the worker.
type readResult struct {
	m   message
	err error
}

// workerConn is one registered worker: its connection, the reader
// goroutine's routing state, and the latency bookkeeping /metrics
// reports per shard.
type workerConn struct {
	id   int
	name string
	conn net.Conn

	// Guarded by the owning Coordinator's mu.
	islands    int // size of the last run assignment
	epochs     int64
	epochTotal time.Duration
	epochMax   time.Duration
	lastSeen   time.Time       // last frame of any kind (liveness)
	beats      int64           // heartbeat frames received
	sink       chan readResult // non-nil while a run owns the worker
	sinkDone   chan struct{}   // closed when the owning run unwinds
}

// Coordinator owns the distributed archipelago's ring: workers register
// with it, and RunIsland partitions an island run across them, plays the
// epoch barrier and the ring exchange, and assembles the result. Create
// with NewCoordinator, serve with Serve (or ListenAndServe), stop by
// cancelling Serve's context.
//
// Every registered worker's connection is owned by a dedicated reader
// goroutine: heartbeats update the liveness clock, run frames are routed
// to the run that claimed the worker, and a read failure (the worker
// died) surfaces immediately — to the owning run mid-run, or as an
// instant expulsion while idle — instead of waiting for the next run to
// block on the dead connection. A background reaper additionally expels
// workers that go silent past HeartbeatTimeout, catching deaths that
// never close the socket.
//
// Runs are serialized over the fleet: one distributed run owns every
// worker at a time. The HTTP daemon's cache and single-flight sit in
// front, so concurrent identical requests still cost one run.
type Coordinator struct {
	cfg CoordinatorConfig

	mu      sync.Mutex
	workers map[int]*workerConn
	nextID  int
	seq     uint64

	runMu sync.Mutex // serializes distributed runs over the fleet

	runs       atomic.Int64
	runErrors  atomic.Int64
	epochs     atomic.Int64
	migrations atomic.Int64
	beatExpels atomic.Int64
}

// NewCoordinator builds a Coordinator (zero-value config fine).
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = defaultHeartbeatTimeout
	}
	return &Coordinator{cfg: cfg, workers: make(map[int]*workerConn)}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		c.cfg.Log.Printf(format, args...)
	}
}

// Serve accepts worker registrations on ln until ctx is cancelled, then
// closes the listener and every registered worker connection. It also
// runs the liveness reaper (see CoordinatorConfig.HeartbeatTimeout).
func (c *Coordinator) Serve(ctx context.Context, ln net.Listener) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		ln.Close()
		c.mu.Lock()
		for id, w := range c.workers {
			w.conn.Close()
			delete(c.workers, id)
		}
		c.mu.Unlock()
	}()
	if c.cfg.HeartbeatTimeout > 0 {
		go c.reapLoop(done)
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("shard: accept: %w", err)
		}
		go c.handshake(conn)
	}
}

// ListenAndServe listens on addr and calls Serve.
func (c *Coordinator) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	c.logf("coordinator listening on %s", ln.Addr())
	return c.Serve(ctx, ln)
}

// reapLoop periodically expels workers that have gone silent past the
// heartbeat timeout. Expelling closes the connection, so a run blocked on
// the dead worker's barrier read unblocks and retries on the survivors.
func (c *Coordinator) reapLoop(done <-chan struct{}) {
	tick := c.cfg.HeartbeatTimeout / 4
	if tick < 50*time.Millisecond {
		tick = 50 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case now := <-t.C:
			c.reap(now)
		}
	}
}

// reap expels every worker whose last frame is older than the heartbeat
// timeout and reports how many went.
func (c *Coordinator) reap(now time.Time) int {
	c.mu.Lock()
	var stale []*workerConn
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) > c.cfg.HeartbeatTimeout {
			stale = append(stale, w)
		}
	}
	c.mu.Unlock()
	for _, w := range stale {
		c.beatExpels.Add(1)
		c.logf("worker %d (%s) silent for over %s; expelling", w.id, w.name, c.cfg.HeartbeatTimeout)
		c.expel(w)
	}
	return len(stale)
}

// handshake runs the hello/welcome exchange, registers the worker, and
// starts its reader goroutine.
func (c *Coordinator) handshake(conn net.Conn) {
	_ = conn.SetDeadline(time.Now().Add(handshakeTimeout))
	var m message
	if err := readFrame(conn, &m); err != nil || m.Type != msgHello {
		conn.Close()
		return
	}
	_ = conn.SetDeadline(time.Time{})
	c.mu.Lock()
	c.nextID++
	w := &workerConn{id: c.nextID, name: m.Name, conn: conn, lastSeen: time.Now()}
	if w.name == "" {
		w.name = fmt.Sprintf("worker-%d", w.id)
	}
	c.workers[w.id] = w
	n := len(c.workers)
	c.mu.Unlock()
	if err := writeFrame(conn, &message{Type: msgWelcome, WorkerID: w.id}); err != nil {
		c.expel(w)
		return
	}
	c.logf("worker %d (%s) registered from %s (%d in fleet)", w.id, w.name, conn.RemoteAddr(), n)
	go c.readLoop(w)
}

// readLoop owns every read on a worker's connection. Heartbeats feed the
// liveness clock; run frames are routed to the run that claimed the
// worker (frames between runs — stragglers of an aborted run — are
// discarded); a read error is handed to the owning run, if any, and the
// worker is expelled. The loop exits exactly when the worker is no
// longer usable, so a registered worker always has a live reader.
func (c *Coordinator) readLoop(w *workerConn) {
	for {
		var m message
		err := readFrame(w.conn, &m)
		c.mu.Lock()
		w.lastSeen = time.Now()
		if err == nil && m.Type == msgHeartbeat {
			w.beats++
			c.mu.Unlock()
			continue
		}
		sink, sinkDone := w.sink, w.sinkDone
		c.mu.Unlock()
		if err == nil {
			if sink != nil {
				select {
				case sink <- readResult{m: m}:
				case <-sinkDone: // the run unwound first; drop the frame
				}
			}
			continue
		}
		// Broken connection (or a read poisoned by the cancellation
		// watchdog): expel first so no new run can claim the worker, then
		// hand the error to the run that was reading it.
		c.expel(w)
		if sink != nil {
			select {
			case sink <- readResult{err: err}:
			case <-sinkDone:
			}
		}
		return
	}
}

// expel removes a worker from the fleet and closes its connection. Safe
// to call more than once for the same worker.
func (c *Coordinator) expel(w *workerConn) {
	c.mu.Lock()
	_, present := c.workers[w.id]
	delete(c.workers, w.id)
	n := len(c.workers)
	c.mu.Unlock()
	w.conn.Close()
	if present {
		c.logf("worker %d (%s) expelled (%d in fleet)", w.id, w.name, n)
	}
}

// Workers returns the current fleet size.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// fleet snapshots the registered workers sorted by id. The sort keeps
// partitions stable run over run; it has no bearing on results (any
// partition yields the same bytes).
func (c *Coordinator) fleet() []*workerConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := make([]*workerConn, 0, len(c.workers))
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].id < ws[j].id })
	return ws
}

// RunIsland executes the island run distributed over the registered
// workers and returns the assembled result — byte-identical to
// island.Run(ctx, g, p) by construction. A worker failure mid-run expels
// the worker and restarts the run on the survivors; the error returns
// only when the fleet is exhausted or ctx is done.
func (c *Coordinator) RunIsland(ctx context.Context, g *dag.Graph, p island.Params) (*island.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.Migrator = nil // transport wiring never crosses the wire
	c.runMu.Lock()
	defer c.runMu.Unlock()
	for {
		ws := c.fleet()
		if len(ws) == 0 {
			return nil, ErrNoWorkers
		}
		res, err := c.runOnce(ctx, ws, g, p)
		if err == nil {
			c.runs.Add(1)
			return res, nil
		}
		c.runErrors.Add(1)
		if ctx.Err() != nil {
			return nil, err
		}
		if !errors.Is(err, errWorkerFailure) {
			return nil, err
		}
		c.logf("distributed run failed (%v); retrying on the surviving workers", err)
	}
}

// partition splits islands 0..k-1 contiguously over w workers: the first
// k%w shards get one extra island, mirroring the corpus group split.
func partition(k, w int) [][]int {
	parts := make([][]int, w)
	base, rem := k/w, k%w
	next := 0
	for i := range parts {
		size := base
		if i < rem {
			size++
		}
		parts[i] = make([]int, size)
		for j := range parts[i] {
			parts[i][j] = next
			next++
		}
	}
	return parts
}

// runOnce drives one distributed run over the given fleet snapshot. Any
// worker-attributable failure expels the offender, aborts the others
// back to idle, and returns an error wrapping errWorkerFailure.
func (c *Coordinator) runOnce(ctx context.Context, ws []*workerConn, g *dag.Graph, p island.Params) (*island.Result, error) {
	k := p.Islands
	if len(ws) > k {
		ws = ws[:k] // one island per process at minimum; extras sit out
	}
	parts := partition(k, len(ws))

	// Claim the workers: each gets a fresh frame sink the reader routes
	// into for the duration of the run. runDone releases any reader
	// caught mid-route when the run unwinds.
	runDone := make(chan struct{})
	sinks := make([]chan readResult, len(ws))
	c.mu.Lock()
	c.seq++
	seq := c.seq
	for i, w := range ws {
		w.islands = len(parts[i])
		sinks[i] = make(chan readResult, 4)
		w.sink, w.sinkDone = sinks[i], runDone
	}
	c.mu.Unlock()
	defer func() {
		close(runDone)
		c.mu.Lock()
		for _, w := range ws {
			w.sink, w.sinkDone = nil, nil
		}
		c.mu.Unlock()
	}()

	// ctx watchdog: poison every read so a cancelled request cannot hang
	// the barrier; the deadline is cleared again when the run unwinds.
	stop := make(chan struct{})
	var watchdog sync.WaitGroup
	watchdog.Add(1)
	go func() {
		defer watchdog.Done()
		select {
		case <-ctx.Done():
			now := time.Now()
			for _, w := range ws {
				_ = w.conn.SetReadDeadline(now)
			}
		case <-stop:
		}
	}()
	defer func() {
		close(stop)
		watchdog.Wait()
		for _, w := range ws {
			_ = w.conn.SetReadDeadline(time.Time{})
		}
	}()

	// abort returns the failure after expelling the offender (if any) and
	// telling every other worker to drop the run.
	abort := func(failed *workerConn, err error) error {
		for _, w := range ws {
			if w == failed {
				continue
			}
			_ = w.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			_ = writeFrame(w.conn, &message{Type: msgError, Seq: seq, Error: err.Error()})
			_ = w.conn.SetWriteDeadline(time.Time{})
		}
		if failed != nil {
			c.expel(failed)
			return fmt.Errorf("%w: worker %d (%s): %v", errWorkerFailure, failed.id, failed.name, err)
		}
		return err
	}

	// abortCancelled is the ctx-cancellation abort: the watchdog may have
	// poisoned a read mid-frame, leaving a connection's byte stream
	// desynchronized (a partially consumed frame cannot be resumed), so
	// every connection this run touched is expelled rather than parked.
	// Workers redial with backoff and rejoin the fleet cleanly.
	abortCancelled := func() error {
		err := abort(nil, fmt.Errorf("shard: run aborted: %w", ctx.Err()))
		for _, w := range ws {
			c.expel(w)
		}
		return err
	}

	// next reads the worker's next routed frame for this run, skipping
	// stragglers of an aborted earlier run.
	next := func(i int) (message, error) {
		for {
			r := <-sinks[i]
			if r.err != nil {
				return message{}, r.err
			}
			if r.m.Seq != seq {
				continue
			}
			return r.m, nil
		}
	}

	snap := g.Snapshot()
	for i, w := range ws {
		run := &message{Type: msgRun, Seq: seq, Graph: &snap, Params: &p, Islands: parts[i]}
		if err := writeFrame(w.conn, run); err != nil {
			return nil, abort(w, err)
		}
	}

	migrations := 0
	for epoch := 1; ; epoch++ {
		// Barrier: collect one epoch frame per worker. Reads run
		// concurrently so one slow worker delays, not serializes, the
		// rest; the elapsed time per worker is the per-shard epoch
		// latency /metrics reports.
		frames := make([]message, len(ws))
		errs := make([]error, len(ws))
		durs := make([]time.Duration, len(ws))
		var wg sync.WaitGroup
		for i := range ws {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				start := time.Now()
				m, err := next(i)
				if err != nil {
					errs[i] = err
					return
				}
				if m.Type == msgError {
					errs[i] = fmt.Errorf("worker-side failure: %s", m.Error)
					return
				}
				if m.Type != msgEpoch || m.Epoch != epoch {
					errs[i] = fmt.Errorf("protocol: want epoch %d, got %s/%d", epoch, m.Type, m.Epoch)
					return
				}
				frames[i] = m
				durs[i] = time.Since(start)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				if ctx.Err() != nil {
					return nil, abortCancelled()
				}
				return nil, abort(ws[i], err)
			}
		}
		c.epochs.Add(1)
		c.mu.Lock()
		for i, w := range ws {
			w.epochs++
			w.epochTotal += durs[i]
			if durs[i] > w.epochMax {
				w.epochMax = durs[i]
			}
		}
		c.mu.Unlock()

		// Assemble the global elite vector in ring order.
		elites := make([]island.Elite, k)
		seen := make([]bool, k)
		for i := range ws {
			if len(frames[i].Elites) != len(parts[i]) {
				return nil, abort(ws[i], fmt.Errorf("protocol: %d elites for %d islands", len(frames[i].Elites), len(parts[i])))
			}
			for _, e := range frames[i].Elites {
				if e.Island < 0 || e.Island >= k || seen[e.Island] {
					return nil, abort(ws[i], fmt.Errorf("protocol: bad elite island %d", e.Island))
				}
				seen[e.Island] = true
				elites[e.Island] = e
			}
		}
		cont := false
		for _, e := range elites {
			if !e.Done {
				cont = true
				break
			}
		}
		if !cont {
			break
		}
		// The ring turns: island i's incoming elite is island (i-1+k)%k's,
		// delivered positionally per worker. A single-island archipelago
		// exchanges nothing (matching island.Ring).
		for i, w := range ws {
			migrate := &message{Type: msgMigrate, Seq: seq, Epoch: epoch}
			if k > 1 {
				incoming := make([]island.Elite, len(parts[i]))
				for j, isl := range parts[i] {
					incoming[j] = elites[(isl-1+k)%k]
				}
				migrate.Elites = incoming
			}
			if err := writeFrame(w.conn, migrate); err != nil {
				return nil, abort(w, err)
			}
		}
		if k > 1 {
			migrations++
			c.migrations.Add(1)
		}
	}

	// Finish: collect every worker's reports and assemble.
	for _, w := range ws {
		if err := writeFrame(w.conn, &message{Type: msgFinish, Seq: seq}); err != nil {
			return nil, abort(w, err)
		}
	}
	reports := make([]island.Report, 0, k)
	for i, w := range ws {
		m, err := next(i)
		if err != nil {
			if ctx.Err() != nil {
				return nil, abortCancelled()
			}
			return nil, abort(w, err)
		}
		if m.Type == msgError {
			return nil, abort(w, fmt.Errorf("worker-side failure: %s", m.Error))
		}
		if m.Type != msgReport || len(m.Reports) != len(parts[i]) {
			return nil, abort(w, fmt.Errorf("protocol: want %d reports, got %s/%d", len(parts[i]), m.Type, len(m.Reports)))
		}
		reports = append(reports, m.Reports...)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Island < reports[j].Island })
	res, err := island.Assemble(g, p, reports, migrations)
	if err != nil {
		return nil, abort(nil, err)
	}
	return res, nil
}

// WorkerMetrics is one shard's observability record.
type WorkerMetrics struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	// Islands is the size of the worker's slice in the last run it
	// participated in.
	Islands int `json:"islands"`
	// Epochs counts the epoch barriers the worker has answered;
	// MeanEpochMs and MaxEpochMs summarise how long the coordinator
	// waited for it at those barriers.
	Epochs      int64   `json:"epochs"`
	MeanEpochMs float64 `json:"mean_epoch_ms"`
	MaxEpochMs  float64 `json:"max_epoch_ms"`
	// Heartbeats counts the liveness frames received from the worker;
	// LastSeenAgeMs is how long ago the coordinator last heard anything
	// from it (the liveness reaper expels workers past the timeout).
	Heartbeats    int64   `json:"heartbeats"`
	LastSeenAgeMs float64 `json:"last_seen_age_ms"`
}

// ClusterMetrics is the coordinator's observability snapshot, served by
// the daemon's /metrics and /cluster endpoints.
type ClusterMetrics struct {
	Workers    int   `json:"workers"`
	Runs       int64 `json:"runs"`
	RunErrors  int64 `json:"run_errors"`
	Epochs     int64 `json:"epochs"`
	Migrations int64 `json:"migrations"`
	// HeartbeatExpels counts workers expelled by the liveness reaper for
	// going silent past HeartbeatTimeoutMs (run-time failures expel
	// through the run path and are not counted here).
	HeartbeatExpels    int64           `json:"heartbeat_expels"`
	HeartbeatTimeoutMs float64         `json:"heartbeat_timeout_ms"`
	PerWorker          []WorkerMetrics `json:"per_worker,omitempty"`
}

// Metrics returns a point-in-time snapshot of the coordinator's counters.
func (c *Coordinator) Metrics() ClusterMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := ClusterMetrics{
		Workers:         len(c.workers),
		Runs:            c.runs.Load(),
		RunErrors:       c.runErrors.Load(),
		Epochs:          c.epochs.Load(),
		Migrations:      c.migrations.Load(),
		HeartbeatExpels: c.beatExpels.Load(),
	}
	if c.cfg.HeartbeatTimeout > 0 {
		m.HeartbeatTimeoutMs = float64(c.cfg.HeartbeatTimeout.Nanoseconds()) / 1e6
	}
	now := time.Now()
	ids := make([]int, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		w := c.workers[id]
		wm := WorkerMetrics{
			ID: w.id, Name: w.name, Islands: w.islands, Epochs: w.epochs,
			Heartbeats:    w.beats,
			LastSeenAgeMs: float64(now.Sub(w.lastSeen).Nanoseconds()) / 1e6,
		}
		if w.epochs > 0 {
			wm.MeanEpochMs = float64(w.epochTotal.Nanoseconds()) / float64(w.epochs) / 1e6
			wm.MaxEpochMs = float64(w.epochMax.Nanoseconds()) / 1e6
		}
		m.PerWorker = append(m.PerWorker, wm)
	}
	return m
}
