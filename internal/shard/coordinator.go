package shard

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"antlayer/internal/dag"
	"antlayer/internal/island"
)

// ErrNoWorkers reports a distributed run attempted with an empty fleet.
var ErrNoWorkers = errors.New("shard: no workers registered")

// errWorkerFailure tags run errors attributable to a worker (connection
// died, protocol violation, worker-side failure); RunIsland expels the
// worker and retries on the survivors — the partition invariance makes
// the retry byte-identical, so a failure costs time, never answers.
var errWorkerFailure = errors.New("shard: worker failure")

// handshakeTimeout bounds how long an accepted connection may take to say
// hello, so a port-scanner cannot hold an accept slot open.
const handshakeTimeout = 10 * time.Second

// CoordinatorConfig tunes a Coordinator. The zero value is usable.
type CoordinatorConfig struct {
	// Log receives registration and run-lifecycle lines. Nil discards.
	Log *log.Logger
}

// workerConn is one registered worker: its parked connection plus the
// latency bookkeeping /metrics reports per shard.
type workerConn struct {
	id   int
	name string
	conn net.Conn

	// Guarded by the owning Coordinator's mu.
	islands    int // size of the last run assignment
	epochs     int64
	epochTotal time.Duration
	epochMax   time.Duration
}

// Coordinator owns the distributed archipelago's ring: workers register
// with it, and RunIsland partitions an island run across them, plays the
// epoch barrier and the ring exchange, and assembles the result. Create
// with NewCoordinator, serve with Serve (or ListenAndServe), stop by
// cancelling Serve's context.
//
// Runs are serialized over the fleet: one distributed run owns every
// worker at a time. The HTTP daemon's cache and single-flight sit in
// front, so concurrent identical requests still cost one run.
type Coordinator struct {
	cfg CoordinatorConfig

	mu      sync.Mutex
	workers map[int]*workerConn
	nextID  int
	seq     uint64

	runMu sync.Mutex // serializes distributed runs over the fleet

	runs       atomic.Int64
	runErrors  atomic.Int64
	epochs     atomic.Int64
	migrations atomic.Int64
}

// NewCoordinator builds a Coordinator (zero-value config fine).
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	return &Coordinator{cfg: cfg, workers: make(map[int]*workerConn)}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		c.cfg.Log.Printf(format, args...)
	}
}

// Serve accepts worker registrations on ln until ctx is cancelled, then
// closes the listener and every registered worker connection.
func (c *Coordinator) Serve(ctx context.Context, ln net.Listener) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		ln.Close()
		c.mu.Lock()
		for id, w := range c.workers {
			w.conn.Close()
			delete(c.workers, id)
		}
		c.mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("shard: accept: %w", err)
		}
		go c.handshake(conn)
	}
}

// ListenAndServe listens on addr and calls Serve.
func (c *Coordinator) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	c.logf("coordinator listening on %s", ln.Addr())
	return c.Serve(ctx, ln)
}

// handshake runs the hello/welcome exchange and registers the worker.
// The connection is then parked: no goroutine reads it until a run
// claims the worker, so a worker that dies while idle is only discovered
// (and expelled) by the next run.
func (c *Coordinator) handshake(conn net.Conn) {
	_ = conn.SetDeadline(time.Now().Add(handshakeTimeout))
	var m message
	if err := readFrame(conn, &m); err != nil || m.Type != msgHello {
		conn.Close()
		return
	}
	_ = conn.SetDeadline(time.Time{})
	c.mu.Lock()
	c.nextID++
	w := &workerConn{id: c.nextID, name: m.Name, conn: conn}
	if w.name == "" {
		w.name = fmt.Sprintf("worker-%d", w.id)
	}
	c.workers[w.id] = w
	n := len(c.workers)
	c.mu.Unlock()
	if err := writeFrame(conn, &message{Type: msgWelcome, WorkerID: w.id}); err != nil {
		c.expel(w)
		return
	}
	c.logf("worker %d (%s) registered from %s (%d in fleet)", w.id, w.name, conn.RemoteAddr(), n)
}

// expel removes a worker from the fleet and closes its connection.
func (c *Coordinator) expel(w *workerConn) {
	c.mu.Lock()
	delete(c.workers, w.id)
	n := len(c.workers)
	c.mu.Unlock()
	w.conn.Close()
	c.logf("worker %d (%s) expelled (%d in fleet)", w.id, w.name, n)
}

// Workers returns the current fleet size.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// fleet snapshots the registered workers sorted by id. The sort keeps
// partitions stable run over run; it has no bearing on results (any
// partition yields the same bytes).
func (c *Coordinator) fleet() []*workerConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := make([]*workerConn, 0, len(c.workers))
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].id < ws[j].id })
	return ws
}

// RunIsland executes the island run distributed over the registered
// workers and returns the assembled result — byte-identical to
// island.Run(ctx, g, p) by construction. A worker failure mid-run expels
// the worker and restarts the run on the survivors; the error returns
// only when the fleet is exhausted or ctx is done.
func (c *Coordinator) RunIsland(ctx context.Context, g *dag.Graph, p island.Params) (*island.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.Migrator = nil // transport wiring never crosses the wire
	c.runMu.Lock()
	defer c.runMu.Unlock()
	for {
		ws := c.fleet()
		if len(ws) == 0 {
			return nil, ErrNoWorkers
		}
		res, err := c.runOnce(ctx, ws, g, p)
		if err == nil {
			c.runs.Add(1)
			return res, nil
		}
		c.runErrors.Add(1)
		if ctx.Err() != nil {
			return nil, err
		}
		if !errors.Is(err, errWorkerFailure) {
			return nil, err
		}
		c.logf("distributed run failed (%v); retrying on the surviving workers", err)
	}
}

// partition splits islands 0..k-1 contiguously over w workers: the first
// k%w shards get one extra island, mirroring the corpus group split.
func partition(k, w int) [][]int {
	parts := make([][]int, w)
	base, rem := k/w, k%w
	next := 0
	for i := range parts {
		size := base
		if i < rem {
			size++
		}
		parts[i] = make([]int, size)
		for j := range parts[i] {
			parts[i][j] = next
			next++
		}
	}
	return parts
}

// runOnce drives one distributed run over the given fleet snapshot. Any
// worker-attributable failure expels the offender, aborts the others
// back to idle, and returns an error wrapping errWorkerFailure.
func (c *Coordinator) runOnce(ctx context.Context, ws []*workerConn, g *dag.Graph, p island.Params) (*island.Result, error) {
	k := p.Islands
	if len(ws) > k {
		ws = ws[:k] // one island per process at minimum; extras sit out
	}
	parts := partition(k, len(ws))

	c.mu.Lock()
	c.seq++
	seq := c.seq
	for i, w := range ws {
		w.islands = len(parts[i])
	}
	c.mu.Unlock()

	// ctx watchdog: poison every read so a cancelled request cannot hang
	// the barrier; the deadline is cleared again when the run unwinds.
	stop := make(chan struct{})
	var watchdog sync.WaitGroup
	watchdog.Add(1)
	go func() {
		defer watchdog.Done()
		select {
		case <-ctx.Done():
			now := time.Now()
			for _, w := range ws {
				_ = w.conn.SetReadDeadline(now)
			}
		case <-stop:
		}
	}()
	defer func() {
		close(stop)
		watchdog.Wait()
		for _, w := range ws {
			_ = w.conn.SetReadDeadline(time.Time{})
		}
	}()

	// abort returns the failure after expelling the offender (if any) and
	// telling every other worker to drop the run.
	abort := func(failed *workerConn, err error) error {
		for _, w := range ws {
			if w == failed {
				continue
			}
			_ = w.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			_ = writeFrame(w.conn, &message{Type: msgError, Seq: seq, Error: err.Error()})
			_ = w.conn.SetWriteDeadline(time.Time{})
		}
		if failed != nil {
			c.expel(failed)
			return fmt.Errorf("%w: worker %d (%s): %v", errWorkerFailure, failed.id, failed.name, err)
		}
		return err
	}

	// abortCancelled is the ctx-cancellation abort: the watchdog may have
	// poisoned a read mid-frame, leaving a connection's byte stream
	// desynchronized (a partially consumed frame cannot be resumed), so
	// every connection this run touched is expelled rather than parked.
	// Workers redial with backoff and rejoin the fleet cleanly.
	abortCancelled := func() error {
		err := abort(nil, fmt.Errorf("shard: run aborted: %w", ctx.Err()))
		for _, w := range ws {
			c.expel(w)
		}
		return err
	}

	snap := g.Snapshot()
	for i, w := range ws {
		run := &message{Type: msgRun, Seq: seq, Graph: &snap, Params: &p, Islands: parts[i]}
		if err := writeFrame(w.conn, run); err != nil {
			return nil, abort(w, err)
		}
	}

	migrations := 0
	for epoch := 1; ; epoch++ {
		// Barrier: collect one epoch frame per worker. Reads run
		// concurrently so one slow worker delays, not serializes, the
		// rest; the elapsed time per worker is the per-shard epoch
		// latency /metrics reports.
		frames := make([]message, len(ws))
		errs := make([]error, len(ws))
		durs := make([]time.Duration, len(ws))
		var wg sync.WaitGroup
		for i, w := range ws {
			wg.Add(1)
			go func(i int, w *workerConn) {
				defer wg.Done()
				start := time.Now()
				for {
					var m message
					if err := readFrame(w.conn, &m); err != nil {
						errs[i] = err
						return
					}
					if m.Seq != seq {
						continue // straggler from an aborted run
					}
					if m.Type == msgError {
						errs[i] = fmt.Errorf("worker-side failure: %s", m.Error)
						return
					}
					if m.Type != msgEpoch || m.Epoch != epoch {
						errs[i] = fmt.Errorf("protocol: want epoch %d, got %s/%d", epoch, m.Type, m.Epoch)
						return
					}
					frames[i] = m
					durs[i] = time.Since(start)
					return
				}
			}(i, w)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				if ctx.Err() != nil {
					return nil, abortCancelled()
				}
				return nil, abort(ws[i], err)
			}
		}
		c.epochs.Add(1)
		c.mu.Lock()
		for i, w := range ws {
			w.epochs++
			w.epochTotal += durs[i]
			if durs[i] > w.epochMax {
				w.epochMax = durs[i]
			}
		}
		c.mu.Unlock()

		// Assemble the global elite vector in ring order.
		elites := make([]island.Elite, k)
		seen := make([]bool, k)
		for i := range ws {
			if len(frames[i].Elites) != len(parts[i]) {
				return nil, abort(ws[i], fmt.Errorf("protocol: %d elites for %d islands", len(frames[i].Elites), len(parts[i])))
			}
			for _, e := range frames[i].Elites {
				if e.Island < 0 || e.Island >= k || seen[e.Island] {
					return nil, abort(ws[i], fmt.Errorf("protocol: bad elite island %d", e.Island))
				}
				seen[e.Island] = true
				elites[e.Island] = e
			}
		}
		cont := false
		for _, e := range elites {
			if !e.Done {
				cont = true
				break
			}
		}
		if !cont {
			break
		}
		// The ring turns: island i's incoming elite is island (i-1+k)%k's,
		// delivered positionally per worker. A single-island archipelago
		// exchanges nothing (matching island.Ring).
		for i, w := range ws {
			migrate := &message{Type: msgMigrate, Seq: seq, Epoch: epoch}
			if k > 1 {
				incoming := make([]island.Elite, len(parts[i]))
				for j, isl := range parts[i] {
					incoming[j] = elites[(isl-1+k)%k]
				}
				migrate.Elites = incoming
			}
			if err := writeFrame(w.conn, migrate); err != nil {
				return nil, abort(w, err)
			}
		}
		if k > 1 {
			migrations++
			c.migrations.Add(1)
		}
	}

	// Finish: collect every worker's reports and assemble.
	for _, w := range ws {
		if err := writeFrame(w.conn, &message{Type: msgFinish, Seq: seq}); err != nil {
			return nil, abort(w, err)
		}
	}
	reports := make([]island.Report, 0, k)
	for i, w := range ws {
		var m message
		for {
			if err := readFrame(w.conn, &m); err != nil {
				if ctx.Err() != nil {
					return nil, abortCancelled()
				}
				return nil, abort(w, err)
			}
			if m.Seq != seq {
				continue
			}
			break
		}
		if m.Type == msgError {
			return nil, abort(w, fmt.Errorf("worker-side failure: %s", m.Error))
		}
		if m.Type != msgReport || len(m.Reports) != len(parts[i]) {
			return nil, abort(w, fmt.Errorf("protocol: want %d reports, got %s/%d", len(parts[i]), m.Type, len(m.Reports)))
		}
		reports = append(reports, m.Reports...)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Island < reports[j].Island })
	res, err := island.Assemble(g, p, reports, migrations)
	if err != nil {
		return nil, abort(nil, err)
	}
	return res, nil
}

// WorkerMetrics is one shard's observability record.
type WorkerMetrics struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	// Islands is the size of the worker's slice in the last run it
	// participated in.
	Islands int `json:"islands"`
	// Epochs counts the epoch barriers the worker has answered;
	// MeanEpochMs and MaxEpochMs summarise how long the coordinator
	// waited for it at those barriers.
	Epochs      int64   `json:"epochs"`
	MeanEpochMs float64 `json:"mean_epoch_ms"`
	MaxEpochMs  float64 `json:"max_epoch_ms"`
}

// ClusterMetrics is the coordinator's observability snapshot, served by
// the daemon's /metrics and /cluster endpoints.
type ClusterMetrics struct {
	Workers    int             `json:"workers"`
	Runs       int64           `json:"runs"`
	RunErrors  int64           `json:"run_errors"`
	Epochs     int64           `json:"epochs"`
	Migrations int64           `json:"migrations"`
	PerWorker  []WorkerMetrics `json:"per_worker,omitempty"`
}

// Metrics returns a point-in-time snapshot of the coordinator's counters.
func (c *Coordinator) Metrics() ClusterMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := ClusterMetrics{
		Workers:    len(c.workers),
		Runs:       c.runs.Load(),
		RunErrors:  c.runErrors.Load(),
		Epochs:     c.epochs.Load(),
		Migrations: c.migrations.Load(),
	}
	ids := make([]int, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		w := c.workers[id]
		wm := WorkerMetrics{ID: w.id, Name: w.name, Islands: w.islands, Epochs: w.epochs}
		if w.epochs > 0 {
			wm.MeanEpochMs = float64(w.epochTotal.Nanoseconds()) / float64(w.epochs) / 1e6
			wm.MaxEpochMs = float64(w.epochMax.Nanoseconds()) / 1e6
		}
		m.PerWorker = append(m.PerWorker, wm)
	}
	return m
}
