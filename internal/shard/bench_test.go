package shard

import (
	"context"
	"fmt"
	"testing"
	"time"

	"antlayer/internal/island"
)

// BenchmarkSchedulerDispatch measures the scheduler machinery alone —
// admission, lease assignment, dispatch, settle, and the next dispatch
// it triggers — with the wire protocol stubbed out (launch settles the
// run immediately). The number is the scheduling overhead every
// distributed run pays on top of its compute; CI pins it in
// .github/bench/baseline.json.
func BenchmarkSchedulerDispatch(b *testing.B) {
	c := NewCoordinator(CoordinatorConfig{QueueDepth: 1 << 20})
	for i := 1; i <= 8; i++ {
		c.workers[i] = &workerConn{id: i, name: fmt.Sprintf("w%d", i), lastSeen: time.Now()}
	}
	c.launch = func(r *pendingRun, lease []*workerConn) {
		c.settleRun(r, lease, runOutcome{})
	}
	g := testGraph(b, 20, 1)
	p := island.DefaultParams()
	p.Islands = 2
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RunIsland(ctx, g, p); err != nil {
			b.Fatal(err)
		}
	}
}
