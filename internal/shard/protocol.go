// Package shard spans the island archipelago (internal/island) across
// processes: a coordinator owns the ring and the epoch barrier, and
// worker processes own the colonies — one island.Engine per worker, each
// hosting a contiguous slice of the ring.
//
// The wire protocol is length-prefixed JSON over TCP: every frame is a
// 4-byte big-endian length followed by one JSON message. A worker dials
// the coordinator, introduces itself (hello/welcome) and then sits idle
// until the coordinator hands it a run: the graph (a dag.Snapshot, which
// preserves adjacency-list order — part of the determinism contract),
// the island parameters and the worker's slice of the ring. From there
// the exchange is epoch-numbered and ring-ordered:
//
//	worker  → epoch   {seq, epoch, elites}     one elite per local island
//	coord   → migrate {seq, elites, epoch}     ring predecessors, positional
//	          finish  {seq}                    every island is done
//	          error   {seq, error}             run aborted
//	worker  → report  {seq, reports}           after finish: per-island results
//
// The coordinator waits for every worker's epoch frame before answering
// any of them — that barrier, plus the fixed ring order of the exchange,
// is exactly the in-process WaitGroup barrier lifted to the network, so
// the distributed archipelago returns byte-identical layerings at any
// worker-process count and partition (see DESIGN.md §10). Every run
// carries a sequence number so frames from an aborted run can never be
// mistaken for the current one.
package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"antlayer/internal/dag"
	"antlayer/internal/island"
	"antlayer/internal/obs"
)

// maxFrame bounds a single frame so a corrupt or hostile peer cannot make
// the receiver allocate unboundedly. Graph snapshots of the corpus sizes
// this repository targets are well under a megabyte; 64 MiB leaves room
// for very large graphs.
const maxFrame = 64 << 20

// Frame types.
const (
	msgHello     = "hello"
	msgWelcome   = "welcome"
	msgRun       = "run"
	msgEpoch     = "epoch"
	msgMigrate   = "migrate"
	msgFinish    = "finish"
	msgReport    = "report"
	msgError     = "error"
	msgHeartbeat = "heartbeat"
)

// message is the one frame shape of the protocol; Type selects which
// fields are meaningful.
type message struct {
	Type string `json:"type"`
	// Seq identifies the run a frame belongs to; set on every frame after
	// the handshake. Frames with a stale Seq are discarded, so an aborted
	// run's stragglers cannot corrupt the next run's barrier.
	Seq uint64 `json:"seq,omitempty"`

	// hello (worker → coordinator) / welcome (coordinator → worker).
	// Auth carries the shared cluster secret when the coordinator
	// requires one; compared in constant time on the coordinator.
	Name     string `json:"name,omitempty"`
	Auth     string `json:"auth,omitempty"`
	WorkerID int    `json:"worker_id,omitempty"`

	// run (coordinator → worker). TraceID propagates the request trace
	// so the worker's span timings can be attributed to it; empty for
	// untraced runs, and old workers simply ignore it.
	Graph   *dag.Snapshot  `json:"graph,omitempty"`
	Params  *island.Params `json:"params,omitempty"`
	Islands []int          `json:"islands,omitempty"`
	TraceID string         `json:"trace_id,omitempty"`

	// epoch (worker → coordinator) / migrate (coordinator → worker).
	Epoch  int            `json:"epoch,omitempty"`
	Elites []island.Elite `json:"elites,omitempty"`

	// report (worker → coordinator). Spans are the worker's per-epoch
	// compute timings, offsets relative to the worker's run start; the
	// coordinator rebases them onto the request trace at the run-frame
	// dispatch offset (DESIGN.md §14).
	Reports []island.Report `json:"reports,omitempty"`
	Spans   []obs.Span      `json:"spans,omitempty"`

	// error (either direction).
	Error string `json:"error,omitempty"`
}

// writeFrame serialises m as one length-prefixed JSON frame.
func writeFrame(w io.Writer, m *message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("shard: marshal %s frame: %w", m.Type, err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("shard: %s frame of %d bytes exceeds the %d-byte limit", m.Type, len(body), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("shard: write frame header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("shard: write frame body: %w", err)
	}
	return nil
}

// readFrame reads one length-prefixed JSON frame.
func readFrame(r io.Reader, m *message) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err // io.EOF on a clean close; callers label the context
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("shard: incoming frame of %d bytes exceeds the %d-byte limit", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("shard: read frame body: %w", err)
	}
	*m = message{}
	if err := json.Unmarshal(body, m); err != nil {
		return fmt.Errorf("shard: decode frame: %w", err)
	}
	return nil
}
