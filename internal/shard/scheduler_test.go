package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"antlayer/internal/island"
)

// startCoordinator brings up a coordinator on loopback with the given
// config; workers are started by the caller (see startWorker), so tests
// control registration order, fault plans, and reconnect behaviour.
func startCoordinator(t *testing.T, cfg CoordinatorConfig) (*Coordinator, string, context.Context, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	c := NewCoordinator(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = c.Serve(ctx, ln) }()
	return c, ln.Addr().String(), ctx, cancel
}

// startWorker runs one worker against addr; with reconnect it redials
// after a dropped connection, mirroring `daglayer worker -retry`.
func startWorker(ctx context.Context, addr string, cfg WorkerConfig, reconnect bool) {
	w := NewWorker(cfg)
	go func() {
		for {
			_ = w.Run(ctx, addr)
			if !reconnect || ctx.Err() != nil {
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(10 * time.Millisecond):
			}
		}
	}()
}

// schedParams is a small, fast run shape for scheduler tests.
func schedParams(k int, seed int64) island.Params {
	p := island.DefaultParams()
	p.Islands = k
	p.Colony.Tours = 4
	p.Colony.Seed = seed
	p.MigrationInterval = 1
	return p
}

// TestConcurrentRunsByteIdentical is the tentpole invariant under
// concurrency: two distributed runs in flight at once, on disjoint
// leases carved from one fleet, each return exactly the bytes of their
// solo in-process run — at several (fleet, K₁, K₂) shapes.
func TestConcurrentRunsByteIdentical(t *testing.T) {
	shapes := []struct{ fleet, k1, k2 int }{
		{4, 2, 2}, // the issue's headline shape: two K=2 runs on 4 workers
		{3, 2, 1},
		{5, 3, 2},
	}
	for _, sh := range shapes {
		t.Run(fmt.Sprintf("fleet=%d_k1=%d_k2=%d", sh.fleet, sh.k1, sh.k2), func(t *testing.T) {
			g1, g2 := testGraph(t, 50, 101), testGraph(t, 60, 202)
			p1, p2 := schedParams(sh.k1, 11), schedParams(sh.k2, 22)
			want1, err := island.Run(context.Background(), g1, p1)
			if err != nil {
				t.Fatal(err)
			}
			want2, err := island.Run(context.Background(), g2, p2)
			if err != nil {
				t.Fatal(err)
			}

			c, addr, ctx, cancel := startCoordinator(t, CoordinatorConfig{})
			defer cancel()
			for i := 0; i < sh.fleet; i++ {
				startWorker(ctx, addr, WorkerConfig{Name: fmt.Sprintf("w%d", i)}, true)
			}
			waitWorkers(t, c, sh.fleet)

			var wg sync.WaitGroup
			var res1, res2 *island.Result
			var err1, err2 error
			wg.Add(2)
			go func() { defer wg.Done(); res1, err1 = c.RunIsland(context.Background(), g1, p1) }()
			go func() { defer wg.Done(); res2, err2 = c.RunIsland(context.Background(), g2, p2) }()
			wg.Wait()
			if err1 != nil || err2 != nil {
				t.Fatalf("concurrent runs failed: %v / %v", err1, err2)
			}
			if fingerprint(res1) != fingerprint(want1) {
				t.Errorf("run 1 diverged from its in-process reference")
			}
			if fingerprint(res2) != fingerprint(want2) {
				t.Errorf("run 2 diverged from its in-process reference")
			}
			m := c.Metrics()
			if m.Runs != 2 || m.RunErrors != 0 {
				t.Errorf("runs=%d errors=%d, want 2/0", m.Runs, m.RunErrors)
			}
			if m.IdleWorkers != sh.fleet {
				t.Errorf("idle_workers=%d after both runs settled, want %d", m.IdleWorkers, sh.fleet)
			}
		})
	}
}

// TestConcurrentRunsOverlap pins that the scheduler actually runs two
// runs at once (not merely interleaves them): with every epoch slowed by
// a fault delay, two K=2 runs on a 4-worker fleet must both hold leases
// simultaneously — the concurrent-run high-water mark reaches 2.
func TestConcurrentRunsOverlap(t *testing.T) {
	c, addr, ctx, cancel := startCoordinator(t, CoordinatorConfig{})
	defer cancel()
	for i := 0; i < 4; i++ {
		startWorker(ctx, addr, WorkerConfig{
			Name:  fmt.Sprintf("w%d", i),
			Fault: &FaultPlan{EpochDelay: 20 * time.Millisecond},
		}, true)
	}
	waitWorkers(t, c, 4)

	g := testGraph(t, 40, 7)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.RunIsland(context.Background(), g, schedParams(2, int64(100+i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	m := c.Metrics()
	if m.PeakConcurrentRuns < 2 {
		t.Errorf("peak_concurrent_runs=%d, want >= 2 (runs serialized)", m.PeakConcurrentRuns)
	}
	if m.DispatchMs.Count < 2 {
		t.Errorf("dispatch_ms.count=%d, want >= 2", m.DispatchMs.Count)
	}
}

// waitMetrics polls the coordinator until cond holds (or fails the test).
func waitMetrics(t *testing.T, c *Coordinator, what string, cond func(ClusterMetrics) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond(c.Metrics()) {
		if time.Now().After(deadline) {
			t.Fatalf("condition %q never held (metrics %+v)", what, c.Metrics())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRunQueueFullRejected fills the admission queue and checks the
// overflow run is rejected with ErrRunQueueFull while the admitted runs
// still complete correctly.
func TestRunQueueFullRejected(t *testing.T) {
	c, addr, ctx, cancel := startCoordinator(t, CoordinatorConfig{
		MaxConcurrentRuns: 1,
		QueueDepth:        1,
	})
	defer cancel()
	startWorker(ctx, addr, WorkerConfig{
		Name:  "slow",
		Fault: &FaultPlan{EpochDelay: 30 * time.Millisecond},
	}, true)
	waitWorkers(t, c, 1)

	g := testGraph(t, 40, 9)
	p := schedParams(1, 5)
	want, err := island.Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}

	results := make(chan error, 2)
	runDistributed := func() {
		res, err := c.RunIsland(context.Background(), g, p)
		if err == nil && fingerprint(res) != fingerprint(want) {
			err = errors.New("diverged from in-process reference")
		}
		results <- err
	}
	go runDistributed()
	waitMetrics(t, c, "first run in flight", func(m ClusterMetrics) bool { return m.RunsInFlight == 1 })
	go runDistributed()
	waitMetrics(t, c, "second run queued", func(m ClusterMetrics) bool { return m.RunsQueued == 1 })

	if _, err := c.RunIsland(context.Background(), g, p); !errors.Is(err, ErrRunQueueFull) {
		t.Fatalf("overflow run: err=%v, want ErrRunQueueFull", err)
	}
	if ra := c.RetryAfterSeconds(); ra < 1 || ra > 30 {
		t.Errorf("RetryAfterSeconds()=%d, want within [1,30]", ra)
	}
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("admitted run %d: %v", i, err)
		}
	}
	m := c.Metrics()
	if m.RunsRejected != 1 {
		t.Errorf("runs_rejected=%d, want 1", m.RunsRejected)
	}
	if m.RunQueueBound != 1 {
		t.Errorf("run_queue_bound=%d, want 1", m.RunQueueBound)
	}
}

// TestLeaseExhaustedRequeues kills a run's entire (single-worker) lease:
// the run must re-enter the queue, dispatch onto the surviving worker,
// and still return the in-process bytes.
func TestLeaseExhaustedRequeues(t *testing.T) {
	c, addr, ctx, cancel := startCoordinator(t, CoordinatorConfig{})
	defer cancel()
	// Registration order fixes lease order (leases take lowest ids
	// first): the doomed worker must be id 1 so the first dispatch
	// leases it — and it never reconnects, exhausting the lease.
	startWorker(ctx, addr, WorkerConfig{Name: "doomed", Fault: &FaultPlan{DieAtEpoch: 1}}, false)
	waitWorkers(t, c, 1)
	startWorker(ctx, addr, WorkerConfig{Name: "healthy"}, true)
	waitWorkers(t, c, 2)

	g := testGraph(t, 40, 17)
	p := schedParams(1, 33)
	want, err := island.Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunIsland(context.Background(), g, p)
	if err != nil {
		t.Fatalf("run after lease exhaustion: %v", err)
	}
	if fingerprint(res) != fingerprint(want) {
		t.Error("requeued run diverged from in-process result")
	}
	m := c.Metrics()
	if m.Runs != 1 || m.RunErrors != 1 {
		t.Errorf("runs=%d errors=%d, want 1/1 (one failed attempt, one success)", m.Runs, m.RunErrors)
	}
}

// TestQueuedRunDispatchesOnJoin parks a run in the queue behind a busy
// single-worker fleet, then registers a second worker: the join must
// dispatch the waiting run immediately (rebalance-on-join for pending
// runs), overlapping it with the in-flight one.
func TestQueuedRunDispatchesOnJoin(t *testing.T) {
	c, addr, ctx, cancel := startCoordinator(t, CoordinatorConfig{})
	defer cancel()
	startWorker(ctx, addr, WorkerConfig{
		Name:  "busy",
		Fault: &FaultPlan{EpochDelay: 25 * time.Millisecond},
	}, true)
	waitWorkers(t, c, 1)

	g := testGraph(t, 40, 21)
	p := schedParams(1, 44)
	want, err := island.Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}

	results := make(chan error, 2)
	runDistributed := func() {
		res, err := c.RunIsland(context.Background(), g, p)
		if err == nil && fingerprint(res) != fingerprint(want) {
			err = errors.New("diverged from in-process reference")
		}
		results <- err
	}
	go runDistributed()
	waitMetrics(t, c, "first run in flight", func(m ClusterMetrics) bool { return m.RunsInFlight == 1 })
	go runDistributed()
	waitMetrics(t, c, "second run queued", func(m ClusterMetrics) bool { return m.RunsQueued == 1 })

	startWorker(ctx, addr, WorkerConfig{Name: "joiner"}, true)
	waitMetrics(t, c, "queued run dispatched on join", func(m ClusterMetrics) bool { return m.RunsQueued == 0 })
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("run %d: %v", i, err)
		}
	}
	if m := c.Metrics(); m.PeakConcurrentRuns < 2 {
		t.Errorf("peak_concurrent_runs=%d, want >= 2 (join did not overlap the runs)", m.PeakConcurrentRuns)
	}
}

// TestCancelledWhileQueued cancels a run that never got workers: it must
// leave the queue promptly with a queued-cancellation error, without
// disturbing the in-flight run.
func TestCancelledWhileQueued(t *testing.T) {
	c, addr, ctx, cancel := startCoordinator(t, CoordinatorConfig{})
	defer cancel()
	startWorker(ctx, addr, WorkerConfig{
		Name:  "busy",
		Fault: &FaultPlan{EpochDelay: 25 * time.Millisecond},
	}, true)
	waitWorkers(t, c, 1)

	g := testGraph(t, 40, 27)
	p := schedParams(1, 55)
	firstDone := make(chan error, 1)
	go func() {
		_, err := c.RunIsland(context.Background(), g, p)
		firstDone <- err
	}()
	waitMetrics(t, c, "first run in flight", func(m ClusterMetrics) bool { return m.RunsInFlight == 1 })

	runCtx, cancelRun := context.WithCancel(context.Background())
	queuedDone := make(chan error, 1)
	go func() {
		_, err := c.RunIsland(runCtx, g, p)
		queuedDone <- err
	}()
	waitMetrics(t, c, "second run queued", func(m ClusterMetrics) bool { return m.RunsQueued == 1 })
	cancelRun()
	select {
	case err := <-queuedDone:
		if err == nil || !strings.Contains(err.Error(), "queued") {
			t.Errorf("queued cancellation err = %v, want a queued-cancellation error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled queued run never returned")
	}
	waitMetrics(t, c, "queue empty after cancel", func(m ClusterMetrics) bool { return m.RunsQueued == 0 })
	if err := <-firstDone; err != nil {
		t.Errorf("in-flight run disturbed by queued cancellation: %v", err)
	}
}

// TestLeaseExactlySized: a K-island run on a larger fleet leases exactly
// K workers — the others never see the run (DESIGN.md §12; runOnce takes
// the lease as-is, with no re-truncation).
func TestLeaseExactlySized(t *testing.T) {
	c, addr, ctx, cancel := startCoordinator(t, CoordinatorConfig{})
	defer cancel()
	for i := 0; i < 3; i++ {
		startWorker(ctx, addr, WorkerConfig{Name: fmt.Sprintf("w%d", i)}, true)
	}
	waitWorkers(t, c, 3)
	g := testGraph(t, 12, 2)
	if _, err := c.RunIsland(context.Background(), g, schedParams(2, 7)); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	participated := 0
	for _, w := range m.PerWorker {
		if w.Epochs > 0 {
			participated++
		}
		if w.State != "idle" {
			t.Errorf("worker %s still %q after the run settled", w.Name, w.State)
		}
	}
	if participated != 2 {
		t.Errorf("%d workers participated, want exactly 2 (lease size)", participated)
	}
}
