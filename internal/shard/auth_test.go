package shard

import (
	"context"
	"strings"
	"testing"
	"time"

	"antlayer/internal/island"
)

func TestSecretsEqual(t *testing.T) {
	cases := []struct {
		got, want string
		equal     bool
	}{
		{"hunter2", "hunter2", true},
		{"", "", true},
		{"hunter2", "hunter3", false},
		{"hunter2", "hunter2x", false}, // length must not shortcut
		{"", "hunter2", false},
	}
	for _, c := range cases {
		if got := secretsEqual(c.got, c.want); got != c.equal {
			t.Errorf("secretsEqual(%q, %q) = %v, want %v", c.got, c.want, got, c.equal)
		}
	}
}

// TestClusterSecretAcceptsMatch: a worker presenting the right secret
// registers and serves runs as usual.
func TestClusterSecretAcceptsMatch(t *testing.T) {
	c, addr, ctx, cancel := startCoordinator(t, CoordinatorConfig{Secret: "hunter2"})
	defer cancel()
	startWorker(ctx, addr, WorkerConfig{Name: "w0", Secret: "hunter2"}, true)
	waitWorkers(t, c, 1)

	g := testGraph(t, 30, 3)
	p := schedParams(1, 9)
	want, err := island.Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunIsland(context.Background(), g, p)
	if err != nil {
		t.Fatalf("run on authenticated fleet: %v", err)
	}
	if fingerprint(res) != fingerprint(want) {
		t.Error("authenticated run diverged from in-process result")
	}
}

// TestClusterSecretRejectsMismatch: a wrong (or missing) secret is a
// clean registration failure — the worker learns why, never joins the
// fleet, and nothing is counted as an expulsion.
func TestClusterSecretRejectsMismatch(t *testing.T) {
	c, addr, ctx, cancel := startCoordinator(t, CoordinatorConfig{Secret: "hunter2"})
	defer cancel()
	for _, secret := range []string{"wrong", ""} {
		w := NewWorker(WorkerConfig{Name: "intruder", Secret: secret})
		err := w.Run(ctx, addr)
		if err == nil || !strings.Contains(err.Error(), "rejected") {
			t.Errorf("secret %q: err = %v, want a rejection", secret, err)
		}
	}
	// Give any in-flight registration a moment, then confirm no one got in
	// and the rejection was not treated as an expel.
	time.Sleep(20 * time.Millisecond)
	if n := c.Workers(); n != 0 {
		t.Errorf("fleet size = %d after rejected registrations, want 0", n)
	}
	if m := c.Metrics(); m.HeartbeatExpels != 0 {
		t.Errorf("heartbeat_expels = %d after rejections, want 0", m.HeartbeatExpels)
	}
}

// TestSecretlessCoordinatorIgnoresAuth: a coordinator with no secret
// configured accepts workers whether or not they present one.
func TestSecretlessCoordinatorIgnoresAuth(t *testing.T) {
	c, addr, ctx, cancel := startCoordinator(t, CoordinatorConfig{})
	defer cancel()
	startWorker(ctx, addr, WorkerConfig{Name: "with", Secret: "anything"}, true)
	startWorker(ctx, addr, WorkerConfig{Name: "without"}, true)
	waitWorkers(t, c, 2)
}
