// Package netsimplex implements the network simplex layering of Gansner,
// Koutsofios, North and Vo ("A Technique for Drawing Directed Graphs",
// IEEE TSE 1993) — reference [5] of the paper.
//
// Network simplex finds a layering minimising the total weighted edge span
// Σ ω(e)·span(e), which for unit weights equals the minimum possible dummy
// vertex count plus the number of edges. The paper positions the Promote
// Layering heuristic as an easy-to-implement alternative to this method;
// having the exact optimum available lets the test suite and the ablation
// benchmarks quantify how close PL and the ant colony get.
//
// The implementation follows the classic outline: start from a feasible
// layering (longest-path), grow a tight spanning tree, then repeatedly
// exchange a tree edge with negative cut value for the minimum-slack
// non-tree edge crossing the cut in the opposite direction, until no
// negative cut values remain.
package netsimplex

import (
	"errors"
	"fmt"

	"antlayer/internal/dag"
	"antlayer/internal/layering"
	"antlayer/internal/longestpath"
)

// ErrIterationLimit reports that the simplex loop exceeded its safety cap;
// this indicates a bug rather than bad input and should never surface.
var ErrIterationLimit = errors.New("netsimplex: iteration limit exceeded")

// Layer computes a minimum total-edge-span layering of g. The input must
// be acyclic. Isolated vertices end on layer 1.
func Layer(g *dag.Graph) (*layering.Layering, error) {
	return LayerBalanced(g, false)
}

// LayerBalanced computes the minimum total-edge-span layering and, when
// balance is set, applies Gansner et al.'s balance pass: vertices whose
// in-degree equals their out-degree (so any position within their span is
// span-optimal) move to the least crowded feasible layer, evening out the
// layer widths without giving up optimality.
func LayerBalanced(g *dag.Graph, balance bool) (*layering.Layering, error) {
	lpl, err := longestpath.Layer(g)
	if err != nil {
		return nil, err
	}
	if g.M() == 0 {
		return lpl, nil
	}
	s := &simplex{g: g, layer: lpl.Assignment()}
	if err := s.run(); err != nil {
		return nil, err
	}
	s.rebase()
	if balance {
		s.balance()
	}
	l := layering.FromAssignment(g, s.layer)
	l.Normalize()
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("netsimplex: produced invalid layering: %w", err)
	}
	return l, nil
}

// simplex carries the solver state. Components are recomputed per
// operation (O(n+m)); with the corpus sizes of the paper (n <= 100) the
// simple implementation is plenty fast and much easier to verify.
type simplex struct {
	g     *dag.Graph
	layer []int // current feasible assignment

	// Spanning tree over the *weakly connected component structure*:
	// treeAdj[v] lists tree neighbours (by edge index into edges).
	edges   []dag.Edge
	inTree  []bool
	treeAdj [][]int // vertex -> indices into edges
}

// slack of edge e under the current layering (>= 0 when feasible).
func (s *simplex) slack(e dag.Edge) int {
	return s.layer[e.U] - s.layer[e.V] - 1
}

func (s *simplex) run() error {
	s.edges = s.g.Edges()
	// Handle disconnected graphs by running the tree construction per
	// weakly connected component; isolated vertices have no edges and
	// stay wherever the seed put them.
	if err := s.buildTightTree(); err != nil {
		return err
	}
	limit := 4*len(s.edges)*len(s.edges) + 100
	for iter := 0; ; iter++ {
		if iter > limit {
			return ErrIterationLimit
		}
		leave := s.findNegativeCut()
		if leave < 0 {
			return nil
		}
		if err := s.exchange(leave); err != nil {
			return err
		}
	}
}

// buildTightTree grows, per weakly connected component, a spanning tree of
// tight edges (slack 0), shifting the partial tree towards the closest
// non-tree vertex when it gets stuck (Gansner et al., procedure
// tight_tree / init_rank).
func (s *simplex) buildTightTree() error {
	n := s.g.N()
	s.inTree = make([]bool, len(s.edges))
	s.treeAdj = make([][]int, n)
	inTreeV := make([]bool, n)

	for start := 0; start < n; start++ {
		if inTreeV[start] {
			continue
		}
		// Component membership (fixed for the whole construction).
		comp := s.component(start)
		compSize := 0
		for _, in := range comp {
			if in {
				compSize++
			}
		}
		inTreeV[start] = true
		treeCount := 1
		for treeCount < compSize {
			grown := s.growTight(inTreeV, comp)
			treeCount += grown
			if treeCount == compSize {
				break
			}
			// Stuck: shift the partial tree towards the minimum-slack
			// incident edge.
			minSlack, dir, found := 0, 0, false
			for _, e := range s.edges {
				if !comp[e.U] {
					continue
				}
				uIn, vIn := inTreeV[e.U], inTreeV[e.V]
				if uIn == vIn {
					continue
				}
				sl := s.slack(e)
				if !found || sl < minSlack {
					minSlack, found = sl, true
					if uIn {
						dir = -1 // tree holds the upper endpoint: shift down
					} else {
						dir = +1
					}
				}
			}
			if !found {
				return errors.New("netsimplex: tight tree construction stuck without incident edges")
			}
			if minSlack != 0 {
				for v := 0; v < n; v++ {
					if comp[v] && inTreeV[v] {
						s.layer[v] += dir * minSlack
					}
				}
			}
		}
	}
	return nil
}

// growTight adds every reachable tight edge to the tree and returns how
// many vertices joined.
func (s *simplex) growTight(inTreeV, comp []bool) int {
	added := 0
	for progress := true; progress; {
		progress = false
		for idx, e := range s.edges {
			if s.inTree[idx] || !comp[e.U] || s.slack(e) != 0 {
				continue
			}
			uIn, vIn := inTreeV[e.U], inTreeV[e.V]
			if uIn == vIn {
				continue
			}
			s.inTree[idx] = true
			s.treeAdj[e.U] = append(s.treeAdj[e.U], idx)
			s.treeAdj[e.V] = append(s.treeAdj[e.V], idx)
			if uIn {
				inTreeV[e.V] = true
			} else {
				inTreeV[e.U] = true
			}
			added++
			progress = true
		}
	}
	return added
}

// component returns membership of the weakly connected component of start.
func (s *simplex) component(start int) []bool {
	seen := make([]bool, s.g.N())
	stack := []int{start}
	seen[start] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range s.g.Succ(v) {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
		for _, w := range s.g.Pred(v) {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// headSide returns, for tree edge index te = (u, v), the membership of the
// component containing v (the lower endpoint) after removing te from the
// tree.
func (s *simplex) headSide(te int) []bool {
	e := s.edges[te]
	side := make([]bool, s.g.N())
	side[e.V] = true
	stack := []int{e.V}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, idx := range s.treeAdj[v] {
			if idx == te || !s.inTree[idx] {
				continue
			}
			o := s.edges[idx].U
			if o == v {
				o = s.edges[idx].V
			}
			if !side[o] {
				side[o] = true
				stack = append(stack, o)
			}
		}
	}
	return side
}

// cutValue of tree edge te = (u, v): edges crossing from the u-side to the
// v-side count +1, edges crossing back count -1. A negative value means
// total span decreases by pulling the two sides together the other way.
func (s *simplex) cutValue(te int, vSide []bool) int {
	cut := 0
	for _, e := range s.edges {
		switch {
		case !vSide[e.U] && vSide[e.V]:
			cut++
		case vSide[e.U] && !vSide[e.V]:
			cut--
		}
	}
	return cut
}

// findNegativeCut returns the index of a tree edge with negative cut
// value, or -1 when optimal.
func (s *simplex) findNegativeCut() int {
	for idx := range s.edges {
		if !s.inTree[idx] {
			continue
		}
		if s.cutValue(idx, s.headSide(idx)) < 0 {
			return idx
		}
	}
	return -1
}

// exchange pivots: removes tree edge `leave` and enters the minimum-slack
// non-tree edge crossing the cut in the opposite direction, then shifts
// the v-side component so the entering edge becomes tight.
func (s *simplex) exchange(leave int) error {
	vSide := s.headSide(leave)
	enter, minSlack := -1, 0
	for idx, e := range s.edges {
		if s.inTree[idx] {
			continue
		}
		// Opposite direction: from the v-side up to the u-side.
		if vSide[e.U] && !vSide[e.V] {
			if sl := s.slack(e); enter == -1 || sl < minSlack {
				enter, minSlack = idx, sl
			}
		}
	}
	if enter == -1 {
		return errors.New("netsimplex: negative cut without entering edge")
	}
	// Shift the v-side down by the entering slack so the entering edge
	// becomes tight. (v-side vertices only appear below u-side ones via
	// the leaving edge, whose slack grows — feasible by simplex pivoting.)
	if minSlack != 0 {
		for v := range vSide {
			if vSide[v] {
				s.layer[v] -= minSlack
			}
		}
	}
	// Swap tree membership.
	s.inTree[leave] = false
	s.removeTreeAdj(leave)
	s.inTree[enter] = true
	e := s.edges[enter]
	s.treeAdj[e.U] = append(s.treeAdj[e.U], enter)
	s.treeAdj[e.V] = append(s.treeAdj[e.V], enter)
	return nil
}

// rebase shifts all layers so the lowest is 1 (pivots shift whole
// components up or down).
func (s *simplex) rebase() {
	min := s.layer[0]
	for _, l := range s.layer {
		if l < min {
			min = l
		}
	}
	if min != 1 {
		for v := range s.layer {
			s.layer[v] += 1 - min
		}
	}
}

// balance moves every vertex with equal in- and out-degree (including
// degree zero on both sides) to the feasible layer currently holding the
// fewest vertices. Moving such a vertex by δ changes the total span by
// δ·(outdeg-indeg) = 0, so optimality is preserved.
func (s *simplex) balance() {
	maxLayer := 1
	for _, l := range s.layer {
		if l > maxLayer {
			maxLayer = l
		}
	}
	counts := make([]int, maxLayer+2)
	for _, l := range s.layer {
		counts[l]++
	}
	for v := 0; v < s.g.N(); v++ {
		if s.g.InDegree(v) != s.g.OutDegree(v) {
			continue
		}
		lo, hi := 1, maxLayer
		for _, w := range s.g.Succ(v) {
			if s.layer[w]+1 > lo {
				lo = s.layer[w] + 1
			}
		}
		for _, u := range s.g.Pred(v) {
			if s.layer[u]-1 < hi {
				hi = s.layer[u] - 1
			}
		}
		if lo >= hi {
			continue
		}
		best := s.layer[v]
		for l := lo; l <= hi; l++ {
			if counts[l] < counts[best] {
				best = l
			}
		}
		if best != s.layer[v] {
			counts[s.layer[v]]--
			counts[best]++
			s.layer[v] = best
		}
	}
}

func (s *simplex) removeTreeAdj(idx int) {
	e := s.edges[idx]
	for _, v := range []int{e.U, e.V} {
		adj := s.treeAdj[v]
		for i, x := range adj {
			if x == idx {
				adj[i] = adj[len(adj)-1]
				s.treeAdj[v] = adj[:len(adj)-1]
				break
			}
		}
	}
}
