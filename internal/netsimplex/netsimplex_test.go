package netsimplex

import (
	"math/rand"
	"testing"

	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
	"antlayer/internal/longestpath"
	"antlayer/internal/promote"
)

func TestLayerDiamond(t *testing.T) {
	g := dag.New(4)
	g.MustAddEdge(3, 2)
	g.MustAddEdge(3, 1)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(1, 0)
	l, err := Layer(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// The diamond is already optimal: every edge tight, zero dummies.
	if l.DummyCount() != 0 {
		t.Fatalf("dummies = %d, want 0", l.DummyCount())
	}
	if l.Height() != 3 {
		t.Fatalf("height = %d, want 3", l.Height())
	}
}

func TestLayerPullsHangingVertices(t *testing.T) {
	// 4 -> 3 -> 0, 4 -> {1, 2}: LPL leaves 1 and 2 on layer 1 with span-2
	// edges; the optimum pulls them up next to their source (2 fewer
	// dummies).
	g := dag.New(5)
	g.MustAddEdge(4, 3)
	g.MustAddEdge(3, 0)
	g.MustAddEdge(4, 1)
	g.MustAddEdge(4, 2)
	l, err := Layer(g)
	if err != nil {
		t.Fatal(err)
	}
	if l.DummyCount() != 0 {
		t.Fatalf("dummies = %d, want 0", l.DummyCount())
	}
}

func TestLayerCyclic(t *testing.T) {
	g := dag.New(2)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 0)
	if _, err := Layer(g); err == nil {
		t.Fatal("cyclic input accepted")
	}
}

func TestLayerEdgeCases(t *testing.T) {
	// Empty.
	if l, err := Layer(dag.New(0)); err != nil || l.NumLayers() != 0 {
		t.Fatalf("empty: %v, layers=%d", err, l.NumLayers())
	}
	// Edgeless.
	l, err := Layer(dag.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if l.Height() != 1 {
		t.Fatalf("edgeless height = %d", l.Height())
	}
	// Path.
	l, err = Layer(graphgen.Path(5))
	if err != nil {
		t.Fatal(err)
	}
	if l.Height() != 5 || l.DummyCount() != 0 {
		t.Fatalf("path: height=%d dummies=%d", l.Height(), l.DummyCount())
	}
}

func TestLayerDisconnected(t *testing.T) {
	// Two components with different structures.
	g := dag.New(6)
	g.MustAddEdge(1, 0)
	g.MustAddEdge(2, 0) // component {0,1,2}
	g.MustAddEdge(5, 4)
	g.MustAddEdge(4, 3) // component {3,4,5}
	l, err := Layer(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.DummyCount() != 0 {
		t.Fatalf("dummies = %d, want 0", l.DummyCount())
	}
}

func TestOptimalityAgainstBruteForce(t *testing.T) {
	// Exhaustively verify minimality of the total edge span on small
	// random DAGs by enumerating all layerings up to height n.
	rng := rand.New(rand.NewSource(110))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(4) // up to 6 vertices keeps enumeration cheap
		g := dag.New(n)
		for tries := 0; tries < n*2; tries++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if u < v {
				u, v = v, u
			}
			if !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
		l, err := Layer(g)
		if err != nil {
			t.Fatal(err)
		}
		got := l.TotalEdgeSpan()
		want := bruteMinSpan(g)
		if got != want {
			t.Fatalf("n=%d m=%d: netsimplex span %d, brute-force optimum %d", n, g.M(), got, want)
		}
	}
}

// bruteMinSpan enumerates all assignments into layers 1..n and returns the
// minimum total edge span over valid layerings.
func bruteMinSpan(g *dag.Graph) int {
	n := g.N()
	assign := make([]int, n)
	best := 1 << 30
	var rec func(v int)
	rec = func(v int) {
		if v == n {
			span := 0
			for _, e := range g.Edges() {
				d := assign[e.U] - assign[e.V]
				if d < 1 {
					return
				}
				span += d
			}
			if span < best {
				best = span
			}
			return
		}
		for l := 1; l <= n; l++ {
			assign[v] = l
			rec(v + 1)
		}
	}
	rec(0)
	return best
}

func TestNeverWorseThanPromote(t *testing.T) {
	// Network simplex is exact; the PL heuristic and LPL cannot beat it
	// on total span / dummy count.
	rng := rand.New(rand.NewSource(111))
	for i := 0; i < 25; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(5+rng.Intn(60)), rng)
		if err != nil {
			t.Fatal(err)
		}
		ns, err := Layer(g)
		if err != nil {
			t.Fatal(err)
		}
		lpl, _ := longestpath.Layer(g)
		pl, _ := promote.Apply(lpl)
		if ns.DummyCount() > pl.DummyCount() {
			t.Fatalf("netsimplex dummies %d > promote %d", ns.DummyCount(), pl.DummyCount())
		}
		if ns.DummyCount() > lpl.DummyCount() {
			t.Fatalf("netsimplex dummies %d > LPL %d", ns.DummyCount(), lpl.DummyCount())
		}
		if err := ns.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBalancedKeepsOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for i := 0; i < 20; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(5+rng.Intn(40)), rng)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Layer(g)
		if err != nil {
			t.Fatal(err)
		}
		balanced, err := LayerBalanced(g, true)
		if err != nil {
			t.Fatal(err)
		}
		if err := balanced.Validate(); err != nil {
			t.Fatal(err)
		}
		if balanced.TotalEdgeSpan() != plain.TotalEdgeSpan() {
			t.Fatalf("balance changed total span: %d vs %d",
				balanced.TotalEdgeSpan(), plain.TotalEdgeSpan())
		}
	}
}

func TestBalancedSpreadsIsolatedStructure(t *testing.T) {
	// A path plus several balanced chain vertices hanging mid-span... use
	// isolated vertices (in = out = 0): balance must spread them off the
	// crowded layer 1.
	g := dag.New(8)
	g.MustAddEdge(7, 6)
	g.MustAddEdge(6, 5)
	g.MustAddEdge(5, 4)
	// Vertices 0..3 isolated, seeded onto layer 1 by LPL.
	plain, err := Layer(g)
	if err != nil {
		t.Fatal(err)
	}
	balanced, err := LayerBalanced(g, true)
	if err != nil {
		t.Fatal(err)
	}
	if balanced.WidthExcludingDummies() >= plain.WidthExcludingDummies() {
		t.Fatalf("balance did not reduce width: %g vs %g",
			balanced.WidthExcludingDummies(), plain.WidthExcludingDummies())
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	g, err := graphgen.Generate(graphgen.DefaultConfig(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Layer(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Layer(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if a.Layer(v) != b.Layer(v) {
			t.Fatal("not deterministic")
		}
	}
}
