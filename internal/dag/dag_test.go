package dag

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEdges(t *testing.T, g *Graph, edges ...[2]int) {
	t.Helper()
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", e[0], e[1], err)
		}
	}
}

func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New(4)
	mustEdges(t, g, [2]int{3, 2}, [2]int{3, 1}, [2]int{2, 0}, [2]int{1, 0})
	return g
}

func TestNewEmpty(t *testing.T) {
	g := New(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: n=%d m=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestNewNegative(t *testing.T) {
	g := New(-5)
	if g.N() != 0 {
		t.Fatalf("New(-5).N() = %d, want 0", g.N())
	}
}

func TestAddVertex(t *testing.T) {
	g := New(2)
	v := g.AddVertex()
	if v != 2 || g.N() != 3 {
		t.Fatalf("AddVertex = %d, N = %d; want 2, 3", v, g.N())
	}
	if g.Degree(v) != 0 {
		t.Fatalf("new vertex has degree %d", g.Degree(v))
	}
}

func TestAddEdge(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("edge direction wrong")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if g.OutDegree(0) != 1 || g.InDegree(1) != 1 {
		t.Fatal("degrees wrong")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	cases := []struct {
		u, v int
		want error
	}{
		{-1, 0, ErrVertexRange},
		{0, 3, ErrVertexRange},
		{5, 5, ErrVertexRange},
		{1, 1, ErrSelfLoop},
	}
	for _, c := range cases {
		if err := g.AddEdge(c.u, c.v); !errors.Is(err, c.want) {
			t.Errorf("AddEdge(%d,%d) = %v, want %v", c.u, c.v, err, c.want)
		}
	}
	g.MustAddEdge(0, 1)
	if err := g.AddEdge(0, 1); !errors.Is(err, ErrDuplicateEdge) {
		t.Errorf("duplicate AddEdge = %v, want ErrDuplicateEdge", err)
	}
	if g.M() != 1 {
		t.Fatalf("failed AddEdge mutated graph: M=%d", g.M())
	}
}

func TestMustAddEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddEdge did not panic on self-loop")
		}
	}()
	New(1).MustAddEdge(0, 0)
}

func TestHasEdgeOutOfRange(t *testing.T) {
	g := New(2)
	if g.HasEdge(-1, 0) || g.HasEdge(0, 7) {
		t.Fatal("HasEdge out of range returned true")
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g := diamond(t)
	want := []Edge{{1, 0}, {2, 0}, {3, 2}, {3, 1}}
	got := g.Edges()
	if len(got) != len(want) {
		t.Fatalf("Edges len = %d, want %d", len(got), len(want))
	}
	for i, e := range []Edge{{1, 0}, {2, 0}, {3, 2}, {3, 1}} {
		_ = e
		_ = i
	}
	// Deterministic order: by source then insertion order.
	exp := []Edge{{1, 0}, {2, 0}, {3, 2}, {3, 1}}
	for i := range exp {
		if got[i] != exp[i] {
			t.Fatalf("Edges[%d] = %v, want %v", i, got[i], exp[i])
		}
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond(t)
	src := g.Sources()
	if len(src) != 1 || src[0] != 3 {
		t.Fatalf("Sources = %v, want [3]", src)
	}
	snk := g.Sinks()
	if len(snk) != 1 || snk[0] != 0 {
		t.Fatalf("Sinks = %v, want [0]", snk)
	}
}

func TestWidthDefaults(t *testing.T) {
	g := New(2)
	if g.Width(0) != 1.0 {
		t.Fatalf("default width = %g, want 1", g.Width(0))
	}
	g.SetWidth(0, 2.5)
	if g.Width(0) != 2.5 {
		t.Fatalf("width = %g, want 2.5", g.Width(0))
	}
	g.SetWidth(0, -1) // reset to default
	if g.Width(0) != 1.0 {
		t.Fatalf("reset width = %g, want 1", g.Width(0))
	}
}

func TestLabels(t *testing.T) {
	g := New(1)
	if g.Label(0) != "" {
		t.Fatal("default label not empty")
	}
	g.SetLabel(0, "root")
	if g.Label(0) != "root" {
		t.Fatalf("label = %q", g.Label(0))
	}
}

func TestClone(t *testing.T) {
	g := diamond(t)
	g.SetWidth(1, 3)
	g.SetLabel(2, "two")
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	if c.Width(1) != 3 || c.Label(2) != "two" {
		t.Fatal("clone lost attributes")
	}
	c.MustAddEdge(3, 0)
	if g.HasEdge(3, 0) {
		t.Fatal("clone shares storage with original")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone Validate: %v", err)
	}
}

func TestReverse(t *testing.T) {
	g := diamond(t)
	r := g.Reverse()
	if r.M() != g.M() || r.N() != g.N() {
		t.Fatal("Reverse changed sizes")
	}
	for _, e := range g.Edges() {
		if !r.HasEdge(e.V, e.U) {
			t.Fatalf("Reverse missing edge (%d,%d)", e.V, e.U)
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("Reverse Validate: %v", err)
	}
	rr := r.Reverse()
	if !rr.Equal(g) {
		t.Fatal("double reverse != original")
	}
}

func TestEqual(t *testing.T) {
	g := diamond(t)
	h := diamond(t)
	if !g.Equal(h) {
		t.Fatal("identical graphs not Equal")
	}
	h.MustAddEdge(3, 0)
	if g.Equal(h) {
		t.Fatal("different graphs Equal")
	}
	if g.Equal(New(4)) {
		t.Fatal("graph equal to edgeless graph")
	}
	if g.Equal(New(5)) {
		t.Fatal("graphs with different n Equal")
	}
}

func TestStringSummary(t *testing.T) {
	g := diamond(t)
	if got := g.String(); got != "dag.Graph{n=4 m=4}" {
		t.Fatalf("String = %q", got)
	}
}

// randomDAG builds a random simple DAG with edges from higher to lower
// ids. m is clamped to the simple-DAG maximum so an over-ambitious edge
// request cannot spin the rejection sampler forever.
func randomDAG(rng *rand.Rand, n, m int) *Graph {
	if max := n * (n - 1) / 2; m > max {
		m = max
	}
	g := New(n)
	for g.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u < v {
			u, v = v, u
		}
		if g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v)
	}
	return g
}

func TestValidateRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		n := 2 + rng.Intn(30)
		m := rng.Intn(n * (n - 1) / 2)
		g := randomDAG(rng, n, m)
		if err := g.Validate(); err != nil {
			t.Fatalf("random graph invalid: %v", err)
		}
	}
}

func TestCloneEqualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		g := randomDAG(r, n, r.Intn(n))
		return g.Clone().Equal(g)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
