package dag

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestSnapshotRoundTrip pins the property the distributed archipelago
// depends on: a snapshot restores a graph whose adjacency-list order —
// not just its edge set — is identical, even through JSON.
func TestSnapshotRoundTrip(t *testing.T) {
	g := New(5)
	g.SetWidth(2, 2.5)
	g.SetLabel(4, "top")
	// Interleave insertions so in-list order differs from the order a
	// by-source rebuild (Edges order) would produce: in[0] = [3, 1, 4].
	g.MustAddEdge(3, 0)
	g.MustAddEdge(1, 0)
	g.MustAddEdge(4, 2)
	g.MustAddEdge(4, 0)
	g.MustAddEdge(2, 1)

	blob, err := json.Marshal(g.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(blob, &s); err != nil {
		t.Fatal(err)
	}
	got, err := FromSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() {
		t.Fatalf("round trip: n=%d m=%d, want n=%d m=%d", got.N(), got.M(), g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if !reflect.DeepEqual(append([]int{}, got.Succ(v)...), append([]int{}, g.Succ(v)...)) {
			t.Errorf("Succ(%d) = %v, want %v", v, got.Succ(v), g.Succ(v))
		}
		if !reflect.DeepEqual(append([]int{}, got.Pred(v)...), append([]int{}, g.Pred(v)...)) {
			t.Errorf("Pred(%d) = %v, want %v", v, got.Pred(v), g.Pred(v))
		}
		if got.Width(v) != g.Width(v) {
			t.Errorf("Width(%d) = %g, want %g", v, got.Width(v), g.Width(v))
		}
		if got.Label(v) != g.Label(v) {
			t.Errorf("Label(%d) = %q, want %q", v, got.Label(v), g.Label(v))
		}
	}
	if in0 := got.Pred(0); !reflect.DeepEqual(in0, []int{3, 1, 4}) {
		t.Errorf("in-list order not preserved: Pred(0) = %v, want [3 1 4]", in0)
	}
}

func TestSnapshotOmitsDefaultWidthsAndLabels(t *testing.T) {
	g := New(3)
	g.MustAddEdge(2, 1)
	s := g.Snapshot()
	if s.Widths != nil || s.Labels != nil {
		t.Errorf("default widths/labels serialized: %+v", s)
	}
}

func TestFromSnapshotRejectsInvalid(t *testing.T) {
	cases := map[string]Snapshot{
		"list length mismatch": {Out: make([][]int, 2), In: make([][]int, 3)},
		"width mismatch":       {Out: make([][]int, 2), In: make([][]int, 2), Widths: []float64{1}},
		"label mismatch":       {Out: make([][]int, 2), In: make([][]int, 2), Labels: []string{"a"}},
		"out of range":         {Out: [][]int{{5}, nil}, In: make([][]int, 2)},
		"self loop":            {Out: [][]int{{0}, nil}, In: [][]int{{0}, nil}},
		"duplicate out":        {Out: [][]int{{1, 1}, nil}, In: [][]int{nil, {0, 0}}},
		"in without out":       {Out: [][]int{nil, nil}, In: [][]int{{1}, nil}},
		"in pred out of range": {Out: [][]int{{1}, nil}, In: [][]int{nil, {7}}},
		"duplicate in":         {Out: [][]int{{1}, nil}, In: [][]int{nil, {0, 0}}},
		"count mismatch":       {Out: [][]int{{1}, nil}, In: [][]int{nil, nil}},
	}
	for name, s := range cases {
		if _, err := FromSnapshot(s); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestFromSnapshotEmpty(t *testing.T) {
	g, err := FromSnapshot(Snapshot{})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty snapshot: n=%d m=%d", g.N(), g.M())
	}
}
