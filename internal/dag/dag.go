// Package dag provides a from-scratch directed-graph data structure and the
// graph algorithms required by the layering heuristics in this repository.
//
// It is the stdlib-only substitute for the LEDA 5.0 GRAPH<int,int> type used
// by the original implementation of Andreev, Healy and Nikolov (IPPS 2007).
// Vertices are dense integer identifiers 0..N()-1. Edges are directed u -> v;
// throughout the repository a layering assigns layer(u) > layer(v) for every
// edge (u, v), i.e. edges point "downward" towards layer 1.
package dag

import (
	"errors"
	"fmt"
)

// Common errors returned by graph mutators and algorithms.
var (
	// ErrVertexRange reports a vertex identifier outside [0, N()).
	ErrVertexRange = errors.New("dag: vertex out of range")
	// ErrSelfLoop reports an attempt to add an edge (v, v).
	ErrSelfLoop = errors.New("dag: self-loop not permitted")
	// ErrDuplicateEdge reports an attempt to add an edge twice.
	ErrDuplicateEdge = errors.New("dag: duplicate edge")
	// ErrCyclic reports that an operation requiring acyclicity found a cycle.
	ErrCyclic = errors.New("dag: graph contains a cycle")
)

// Edge is a directed edge from U to V.
type Edge struct {
	U, V int
}

// Graph is a directed graph with dense integer vertices.
//
// The zero value is an empty graph ready to use. Graph does not enforce
// acyclicity on insertion (cycle removal is a pipeline step, see package
// sugiyama); call IsAcyclic or TopologicalOrder to verify.
type Graph struct {
	out    [][]int   // out[u] lists successors of u in insertion order
	in     [][]int   // in[v] lists predecessors of v in insertion order
	widths []float64 // widths[v] is the drawing width of v; 0 means default 1.0
	labels []string  // labels[v] is an optional text label
	m      int       // number of edges
}

// New returns a graph with n isolated vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{
		out:    make([][]int, n),
		in:     make([][]int, n),
		widths: make([]float64, n),
		labels: make([]string, n),
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.out) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddVertex appends a new isolated vertex and returns its identifier.
func (g *Graph) AddVertex() int {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.widths = append(g.widths, 0)
	g.labels = append(g.labels, "")
	return len(g.out) - 1
}

// AddEdge inserts the directed edge (u, v). It rejects out-of-range
// endpoints, self-loops and duplicate edges.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, u, v, g.N())
	}
	if u == v {
		return fmt.Errorf("%w: vertex %d", ErrSelfLoop, u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, u, v)
	}
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	g.m++
	return nil
}

// MustAddEdge is AddEdge but panics on error. It is intended for tests and
// for construction sites where the endpoints are known to be valid.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether the edge (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
		return false
	}
	// Scan the smaller endpoint list.
	if len(g.out[u]) <= len(g.in[v]) {
		for _, w := range g.out[u] {
			if w == v {
				return true
			}
		}
		return false
	}
	for _, w := range g.in[v] {
		if w == u {
			return true
		}
	}
	return false
}

// Succ returns the successors of v (targets of outgoing edges). The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) Succ(v int) []int { return g.out[v] }

// Pred returns the predecessors of v (sources of incoming edges). The
// returned slice is owned by the graph and must not be modified.
func (g *Graph) Pred(v int) []int { return g.in[v] }

// OutDegree returns the number of outgoing edges of v.
func (g *Graph) OutDegree(v int) int { return len(g.out[v]) }

// InDegree returns the number of incoming edges of v.
func (g *Graph) InDegree(v int) int { return len(g.in[v]) }

// Degree returns InDegree(v) + OutDegree(v).
func (g *Graph) Degree(v int) int { return len(g.in[v]) + len(g.out[v]) }

// Edges returns all edges in a deterministic order (by source, then
// insertion order of the out-list).
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u := range g.out {
		for _, v := range g.out[u] {
			es = append(es, Edge{u, v})
		}
	}
	return es
}

// Sources returns the vertices with no incoming edges.
func (g *Graph) Sources() []int {
	var s []int
	for v := range g.in {
		if len(g.in[v]) == 0 {
			s = append(s, v)
		}
	}
	return s
}

// Sinks returns the vertices with no outgoing edges.
func (g *Graph) Sinks() []int {
	var s []int
	for v := range g.out {
		if len(g.out[v]) == 0 {
			s = append(s, v)
		}
	}
	return s
}

// Width returns the drawing width of v. Unset widths default to 1.0, the
// unit width used by the paper for unlabeled vertices.
func (g *Graph) Width(v int) float64 {
	if g.widths[v] == 0 {
		return 1.0
	}
	return g.widths[v]
}

// SetWidth sets the drawing width of v. Non-positive values reset the
// vertex to the default unit width.
func (g *Graph) SetWidth(v int, w float64) {
	if w <= 0 {
		g.widths[v] = 0
		return
	}
	g.widths[v] = w
}

// Label returns the text label of v ("" when unset).
func (g *Graph) Label(v int) string { return g.labels[v] }

// SetLabel sets the text label of v.
func (g *Graph) SetLabel(v int, s string) { g.labels[v] = s }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		out:    make([][]int, g.N()),
		in:     make([][]int, g.N()),
		widths: append([]float64(nil), g.widths...),
		labels: append([]string(nil), g.labels...),
		m:      g.m,
	}
	for v := range g.out {
		c.out[v] = append([]int(nil), g.out[v]...)
		c.in[v] = append([]int(nil), g.in[v]...)
	}
	return c
}

// Reverse returns a copy of the graph with every edge direction flipped.
func (g *Graph) Reverse() *Graph {
	c := New(g.N())
	copy(c.widths, g.widths)
	copy(c.labels, g.labels)
	for u := range g.out {
		for _, v := range g.out[u] {
			c.out[v] = append(c.out[v], u)
			c.in[u] = append(c.in[u], v)
		}
	}
	c.m = g.m
	return c
}

// Validate checks internal consistency (mirrored adjacency, no self-loops,
// no duplicates, in-range endpoints). It is used by tests and by the I/O
// layer after deserialization.
func (g *Graph) Validate() error {
	if len(g.in) != len(g.out) || len(g.widths) != len(g.out) || len(g.labels) != len(g.out) {
		return errors.New("dag: internal slices disagree on vertex count")
	}
	count := 0
	for u := range g.out {
		seen := make(map[int]bool, len(g.out[u]))
		for _, v := range g.out[u] {
			if v < 0 || v >= g.N() {
				return fmt.Errorf("%w: edge (%d,%d)", ErrVertexRange, u, v)
			}
			if v == u {
				return fmt.Errorf("%w: vertex %d", ErrSelfLoop, u)
			}
			if seen[v] {
				return fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, u, v)
			}
			seen[v] = true
			count++
			found := false
			for _, w := range g.in[v] {
				if w == u {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("dag: edge (%d,%d) missing from in-list", u, v)
			}
		}
	}
	if count != g.m {
		return fmt.Errorf("dag: edge count %d disagrees with stored m=%d", count, g.m)
	}
	inCount := 0
	for v := range g.in {
		inCount += len(g.in[v])
		for _, u := range g.in[v] {
			if u < 0 || u >= g.N() {
				return fmt.Errorf("%w: in-edge (%d,%d)", ErrVertexRange, u, v)
			}
		}
	}
	if inCount != g.m {
		return fmt.Errorf("dag: in-list edge count %d disagrees with m=%d", inCount, g.m)
	}
	return nil
}

// Equal reports whether g and h have the same vertex count and edge set
// (ignoring widths and labels and adjacency order).
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for u := range g.out {
		if len(g.out[u]) != len(h.out[u]) {
			return false
		}
		for _, v := range g.out[u] {
			if !h.HasEdge(u, v) {
				return false
			}
		}
	}
	return true
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("dag.Graph{n=%d m=%d}", g.N(), g.M())
}
