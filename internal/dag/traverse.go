package dag

// TopologicalOrder returns a topological ordering of the vertices using
// Kahn's algorithm: whenever (u, v) is an edge, u appears before v. It
// returns ErrCyclic if the graph contains a directed cycle.
//
// The order is deterministic: among ready vertices the one with the smallest
// identifier is chosen first.
func (g *Graph) TopologicalOrder() ([]int, error) {
	n := g.N()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = g.InDegree(v)
	}
	// A min-ordered ready "heap" implemented as a simple binary heap keyed
	// by vertex id keeps the order deterministic without O(n^2) scans.
	h := &intHeap{}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			h.push(v)
		}
	}
	order := make([]int, 0, n)
	for h.len() > 0 {
		u := h.pop()
		order = append(order, u)
		for _, v := range g.Succ(u) {
			indeg[v]--
			if indeg[v] == 0 {
				h.push(v)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCyclic
	}
	return order, nil
}

// IsAcyclic reports whether the graph has no directed cycle.
func (g *Graph) IsAcyclic() bool {
	_, err := g.TopologicalOrder()
	return err == nil
}

// LongestPathToSink returns, for every vertex, the maximum number of edges
// on any directed path from the vertex to a sink. Sinks have value 0. It
// returns ErrCyclic on cyclic input.
//
// In the layering convention of this repository (edges point from higher
// layers to lower layers), LongestPathToSink(v)+1 is exactly the layer the
// Longest-Path Layering algorithm assigns to v.
func (g *Graph) LongestPathToSink() ([]int, error) {
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	dist := make([]int, g.N())
	// Process in reverse topological order so successors are final.
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		best := 0
		for _, w := range g.Succ(v) {
			if dist[w]+1 > best {
				best = dist[w] + 1
			}
		}
		dist[v] = best
	}
	return dist, nil
}

// LongestPathFromSource returns, for every vertex, the maximum number of
// edges on any directed path from a source to the vertex. Sources have
// value 0. It returns ErrCyclic on cyclic input.
func (g *Graph) LongestPathFromSource() ([]int, error) {
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	dist := make([]int, g.N())
	for _, v := range order {
		for _, w := range g.Succ(v) {
			if dist[v]+1 > dist[w] {
				dist[w] = dist[v] + 1
			}
		}
	}
	return dist, nil
}

// WeaklyConnectedComponents returns the vertex sets of the weakly connected
// components (treating edges as undirected), each sorted ascending, in order
// of their smallest vertex.
func (g *Graph) WeaklyConnectedComponents() [][]int {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	stack := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		id := len(comps)
		comp[s] = id
		stack = append(stack[:0], s)
		members := []int{}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, v)
			for _, w := range g.Succ(v) {
				if comp[w] == -1 {
					comp[w] = id
					stack = append(stack, w)
				}
			}
			for _, w := range g.Pred(v) {
				if comp[w] == -1 {
					comp[w] = id
					stack = append(stack, w)
				}
			}
		}
		// Members were collected in DFS order; sort ascending.
		insertionSort(members)
		comps = append(comps, members)
	}
	return comps
}

// IsWeaklyConnected reports whether the graph forms a single weakly
// connected component (the empty graph is considered connected).
func (g *Graph) IsWeaklyConnected() bool {
	return g.N() == 0 || len(g.WeaklyConnectedComponents()) == 1
}

// ReachableFrom returns the set of vertices reachable from v by directed
// paths, including v itself, as a boolean membership slice.
func (g *Graph) ReachableFrom(v int) []bool {
	seen := make([]bool, g.N())
	stack := []int{v}
	seen[v] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Succ(u) {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// HasPath reports whether a directed path from u to v exists.
func (g *Graph) HasPath(u, v int) bool {
	if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
		return false
	}
	return g.ReachableFrom(u)[v]
}

// TransitiveReduction returns a copy of the graph with every edge (u, v)
// removed when an alternative directed path u -> ... -> v of length >= 2
// exists. The input must be acyclic.
//
// The reduction is useful for corpus generation: layering behaviour is
// dominated by the reduced edge set, and reduced graphs match the sparse
// profile of the graph-drawing benchmark sets.
func (g *Graph) TransitiveReduction() (*Graph, error) {
	if !g.IsAcyclic() {
		return nil, ErrCyclic
	}
	red := New(g.N())
	for v := 0; v < g.N(); v++ {
		red.SetWidth(v, g.widths[v])
		red.SetLabel(v, g.labels[v])
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Succ(u) {
			if !g.hasLongPath(u, v) {
				red.MustAddEdge(u, v)
			}
		}
	}
	return red, nil
}

// hasLongPath reports whether a path u -> ... -> v with at least two edges
// exists.
func (g *Graph) hasLongPath(u, v int) bool {
	seen := make([]bool, g.N())
	var stack []int
	for _, w := range g.Succ(u) {
		if w != v && !seen[w] {
			seen[w] = true
			stack = append(stack, w)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Succ(x) {
			if w == v {
				return true
			}
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// insertionSort sorts small int slices in place without pulling in sort for
// hot paths that deal with short adjacency-derived slices.
func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// intHeap is a minimal binary min-heap of ints used by TopologicalOrder.
type intHeap struct{ a []int }

func (h *intHeap) len() int { return len(h.a) }

func (h *intHeap) push(x int) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.a) && h.a[l] < h.a[small] {
			small = l
		}
		if r < len(h.a) && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
