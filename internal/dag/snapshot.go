package dag

import "fmt"

// Snapshot is a serializable copy of a graph's complete internal state:
// both adjacency lists in their exact stored order, plus vertex widths
// and labels.
//
// Why both lists: neighbour-list order is part of this repository's
// determinism contract. The ant walk iterates Succ/Pred in stored order,
// and layer-width accumulation sums floating-point contributions in
// Edges() order, so two graphs that are equal as edge sets but differ in
// insertion order can legitimately produce different (equally valid)
// layerings. Rebuilding a graph on another machine from an edge list
// alone would reproduce the out-lists but not the in-lists (AddEdge
// appends to both, and the interleaving is lost), silently breaking the
// bitwise-identical guarantee the distributed archipelago depends on.
// Snapshot therefore captures the lists verbatim and FromSnapshot
// restores them verbatim, after checking they describe one simple
// directed graph.
type Snapshot struct {
	// Out and In are the adjacency lists exactly as stored: Out[u] lists
	// the successors of u and In[v] the predecessors of v, each in
	// insertion order. len(Out) == len(In) == N.
	Out [][]int `json:"out"`
	In  [][]int `json:"in"`
	// Widths holds the raw per-vertex widths (0 means the default 1.0);
	// empty means all default.
	Widths []float64 `json:"widths,omitempty"`
	// Labels holds the per-vertex text labels; empty means all unset.
	Labels []string `json:"labels,omitempty"`
}

// Snapshot returns a deep serializable copy of the graph. The result
// round-trips through FromSnapshot into a graph whose observable state —
// including Succ/Pred/Edges order — is identical to g's.
func (g *Graph) Snapshot() Snapshot {
	s := Snapshot{
		Out: make([][]int, g.N()),
		In:  make([][]int, g.N()),
	}
	for v := range g.out {
		s.Out[v] = append([]int(nil), g.out[v]...)
		s.In[v] = append([]int(nil), g.in[v]...)
	}
	for _, w := range g.widths {
		if w != 0 {
			s.Widths = append([]float64(nil), g.widths...)
			break
		}
	}
	for _, l := range g.labels {
		if l != "" {
			s.Labels = append([]string(nil), g.labels...)
			break
		}
	}
	return s
}

// FromSnapshot reconstructs a graph from a snapshot, validating that the
// two lists are mutually consistent (every out-edge has exactly one
// matching in-edge), in range, and free of self-loops and duplicates.
func FromSnapshot(s Snapshot) (*Graph, error) {
	n := len(s.Out)
	if len(s.In) != n {
		return nil, fmt.Errorf("dag: snapshot has %d out-lists but %d in-lists", n, len(s.In))
	}
	if len(s.Widths) != 0 && len(s.Widths) != n {
		return nil, fmt.Errorf("dag: snapshot has %d widths for %d vertices", len(s.Widths), n)
	}
	if len(s.Labels) != 0 && len(s.Labels) != n {
		return nil, fmt.Errorf("dag: snapshot has %d labels for %d vertices", len(s.Labels), n)
	}
	g := New(n)
	seen := make(map[Edge]bool)
	for u, succs := range s.Out {
		for _, v := range succs {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, u, v, n)
			}
			if u == v {
				return nil, fmt.Errorf("%w: vertex %d", ErrSelfLoop, u)
			}
			e := Edge{u, v}
			if seen[e] {
				return nil, fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, u, v)
			}
			seen[e] = true
			g.out[u] = append(g.out[u], v)
			g.m++
		}
	}
	inEdges := 0
	for v, preds := range s.In {
		for _, u := range preds {
			if u < 0 || u >= n {
				return nil, fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, u, v, n)
			}
			if !seen[Edge{u, v}] {
				return nil, fmt.Errorf("dag: snapshot in-edge (%d,%d) missing from the out-lists (or listed twice)", u, v)
			}
			seen[Edge{u, v}] = false // each out-edge matches exactly one in-edge
			g.in[v] = append(g.in[v], u)
			inEdges++
		}
	}
	if inEdges != g.m {
		return nil, fmt.Errorf("dag: snapshot lists %d out-edges but %d in-edges", g.m, inEdges)
	}
	if len(s.Widths) == n {
		copy(g.widths, s.Widths)
	}
	if len(s.Labels) == n {
		copy(g.labels, s.Labels)
	}
	return g, nil
}
