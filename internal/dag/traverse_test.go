package dag

import (
	"errors"
	"math/rand"
	"testing"
)

func TestTopologicalOrder(t *testing.T) {
	g := diamond(t)
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, g.N())
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.U] >= pos[e.V] {
			t.Fatalf("edge (%d,%d) violates order %v", e.U, e.V, order)
		}
	}
}

func TestTopologicalOrderDeterministic(t *testing.T) {
	// Independent vertices must come out in id order.
	g := New(5)
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want identity", order)
		}
	}
}

func TestTopologicalOrderCycle(t *testing.T) {
	g := New(3)
	mustEdges(t, g, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0})
	if _, err := g.TopologicalOrder(); !errors.Is(err, ErrCyclic) {
		t.Fatalf("cycle: err = %v, want ErrCyclic", err)
	}
	if g.IsAcyclic() {
		t.Fatal("IsAcyclic true for cycle")
	}
}

func TestLongestPathToSink(t *testing.T) {
	g := diamond(t)
	d, err := g.LongestPathToSink()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 2}
	for v := range want {
		if d[v] != want[v] {
			t.Fatalf("LongestPathToSink[%d] = %d, want %d", v, d[v], want[v])
		}
	}
}

func TestLongestPathFromSource(t *testing.T) {
	g := diamond(t)
	d, err := g.LongestPathFromSource()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 1, 0}
	for v := range want {
		if d[v] != want[v] {
			t.Fatalf("LongestPathFromSource[%d] = %d, want %d", v, d[v], want[v])
		}
	}
}

func TestLongestPathCycleError(t *testing.T) {
	g := New(2)
	mustEdges(t, g, [2]int{0, 1}, [2]int{1, 0})
	if _, err := g.LongestPathToSink(); !errors.Is(err, ErrCyclic) {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
	if _, err := g.LongestPathFromSource(); !errors.Is(err, ErrCyclic) {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
}

func TestLongestPathSumProperty(t *testing.T) {
	// On any path graph, toSink(v) + fromSource(v) == pathlen.
	g := New(6)
	for i := 5; i > 0; i-- {
		g.MustAddEdge(i, i-1)
	}
	toSink, _ := g.LongestPathToSink()
	fromSrc, _ := g.LongestPathFromSource()
	for v := 0; v < 6; v++ {
		if toSink[v]+fromSrc[v] != 5 {
			t.Fatalf("vertex %d: %d+%d != 5", v, toSink[v], fromSrc[v])
		}
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	g := New(6)
	mustEdges(t, g, [2]int{1, 0}, [2]int{2, 1}, [2]int{4, 3})
	comps := g.WeaklyConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Fatalf("comp 0 = %v", comps[0])
	}
	if len(comps[1]) != 2 || comps[1][0] != 3 {
		t.Fatalf("comp 1 = %v", comps[1])
	}
	if len(comps[2]) != 1 || comps[2][0] != 5 {
		t.Fatalf("comp 2 = %v", comps[2])
	}
	if g.IsWeaklyConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !diamond(t).IsWeaklyConnected() {
		t.Fatal("diamond reported disconnected")
	}
	if !New(0).IsWeaklyConnected() {
		t.Fatal("empty graph reported disconnected")
	}
}

func TestReachability(t *testing.T) {
	g := diamond(t)
	if !g.HasPath(3, 0) {
		t.Fatal("missing path 3->0")
	}
	if g.HasPath(0, 3) {
		t.Fatal("phantom path 0->3")
	}
	if g.HasPath(-1, 0) || g.HasPath(0, 99) {
		t.Fatal("out-of-range HasPath returned true")
	}
	r := g.ReachableFrom(3)
	for v := 0; v < 4; v++ {
		if !r[v] {
			t.Fatalf("vertex %d not reachable from source", v)
		}
	}
}

func TestTransitiveReduction(t *testing.T) {
	// Diamond plus the shortcut 3->0, which the reduction must remove.
	g := diamond(t)
	g.MustAddEdge(3, 0)
	red, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if red.HasEdge(3, 0) {
		t.Fatal("reduction kept transitive edge (3,0)")
	}
	if red.M() != 4 {
		t.Fatalf("reduction M = %d, want 4", red.M())
	}
	// Reachability must be preserved.
	for u := 0; u < g.N(); u++ {
		ro, rr := g.ReachableFrom(u), red.ReachableFrom(u)
		for v := range ro {
			if ro[v] != rr[v] {
				t.Fatalf("reachability changed at (%d,%d)", u, v)
			}
		}
	}
}

func TestTransitiveReductionCyclic(t *testing.T) {
	g := New(2)
	mustEdges(t, g, [2]int{0, 1}, [2]int{1, 0})
	if _, err := g.TransitiveReduction(); !errors.Is(err, ErrCyclic) {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
}

func TestTransitiveReductionPreservesReachabilityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 25; i++ {
		n := 3 + rng.Intn(15)
		g := randomDAG(rng, n, rng.Intn(n*2))
		red, err := g.TransitiveReduction()
		if err != nil {
			t.Fatal(err)
		}
		if red.M() > g.M() {
			t.Fatal("reduction added edges")
		}
		for u := 0; u < n; u++ {
			ro, rr := g.ReachableFrom(u), red.ReachableFrom(u)
			for v := range ro {
				if ro[v] != rr[v] {
					t.Fatalf("n=%d: reachability changed at (%d,%d)", n, u, v)
				}
			}
		}
	}
}

func TestTopologicalOrderRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		n := 1 + rng.Intn(40)
		g := randomDAG(rng, n, rng.Intn(n*2))
		order, err := g.TopologicalOrder()
		if err != nil {
			t.Fatalf("random DAG reported cyclic: %v", err)
		}
		if len(order) != n {
			t.Fatalf("order length %d, want %d", len(order), n)
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.Edges() {
			if pos[e.U] >= pos[e.V] {
				t.Fatal("topological order violated")
			}
		}
	}
}

func TestIntHeap(t *testing.T) {
	h := &intHeap{}
	in := []int{5, 3, 8, 1, 9, 2, 7}
	for _, x := range in {
		h.push(x)
	}
	prev := -1
	for h.len() > 0 {
		x := h.pop()
		if x < prev {
			t.Fatalf("heap pop out of order: %d after %d", x, prev)
		}
		prev = x
	}
}
