package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the slog.Logger behind the CLIs' -log-level and
// -log-format flags. level is debug|info|warn|error, format is
// text|json. Both CLIs share this so a fleet logs one schema.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
}

// Discard returns a logger that drops everything — the nil-object for
// components whose callers passed no logger.
func Discard() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
