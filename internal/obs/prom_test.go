package obs

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestPromOutputShape(t *testing.T) {
	var b bytes.Buffer
	p := NewProm(&b)
	p.Family("daglayer_requests_total", "counter", "HTTP requests served.")
	p.Value("daglayer_requests_total", 42)
	p.Family("daglayer_cache_hit_ratio", "gauge", "Hits / lookups.")
	p.Value("daglayer_cache_hit_ratio", 0.25)
	p.Family("daglayer_worker_epochs_total", "counter", "Epochs per worker.")
	p.ValueL("daglayer_worker_epochs_total", 7, "worker", "w-1")
	p.ValueL("daglayer_worker_epochs_total", 9, "worker", "w-2")
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# HELP daglayer_requests_total HTTP requests served.
# TYPE daglayer_requests_total counter
daglayer_requests_total 42
# HELP daglayer_cache_hit_ratio Hits / lookups.
# TYPE daglayer_cache_hit_ratio gauge
daglayer_cache_hit_ratio 0.25
# HELP daglayer_worker_epochs_total Epochs per worker.
# TYPE daglayer_worker_epochs_total counter
daglayer_worker_epochs_total{worker="w-1"} 7
daglayer_worker_epochs_total{worker="w-2"} 9
`
	if got := b.String(); got != want {
		t.Errorf("output:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromEscaping(t *testing.T) {
	var b bytes.Buffer
	p := NewProm(&b)
	p.Family("m", "gauge", "line one\nback\\slash")
	p.ValueL("m", 1, "l", `qu"ote`+"\nand\\slash")
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := "# HELP m line one\\nback\\\\slash\n# TYPE m gauge\nm{l=\"qu\\\"ote\\nand\\\\slash\"} 1\n"
	if got := b.String(); got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestPromMultiLabelAndFloats(t *testing.T) {
	var b bytes.Buffer
	p := NewProm(&b)
	p.ValueL("m", 0.123456789, "a", "1", "b", "2")
	if got := b.String(); got != "m{a=\"1\",b=\"2\"} 0.123456789\n" {
		t.Errorf("got %q", got)
	}
}

type failWriter struct{ err error }

func (f failWriter) Write([]byte) (int, error) { return 0, f.err }

func TestPromStickyError(t *testing.T) {
	werr := errors.New("boom")
	p := NewProm(failWriter{werr})
	p.Family("m", "gauge", "h")
	p.Value("m", 1)
	if !errors.Is(p.Err(), werr) {
		t.Errorf("Err = %v, want %v", p.Err(), werr)
	}
}

func TestReadRuntimeSane(t *testing.T) {
	s := ReadRuntime()
	if s.Goroutines < 1 {
		t.Errorf("goroutines = %d", s.Goroutines)
	}
	if s.HeapAllocBytes == 0 || s.HeapSysBytes == 0 || s.NextGCBytes == 0 {
		t.Errorf("zero heap gauges: %+v", s)
	}
	if s.GCPauseTotalMS < 0 {
		t.Errorf("negative pause total: %v", s.GCPauseTotalMS)
	}
}

func TestNewLogger(t *testing.T) {
	var b bytes.Buffer
	lg, err := NewLogger(&b, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hi", "trace", "abc")
	line := b.String()
	if !strings.Contains(line, `"msg":"hi"`) || !strings.Contains(line, `"trace":"abc"`) {
		t.Errorf("json line = %q", line)
	}
	b.Reset()
	lg, err = NewLogger(&b, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	if b.Len() != 0 {
		t.Errorf("info emitted at warn level: %q", b.String())
	}
	lg.Warn("kept")
	if !strings.Contains(b.String(), "kept") {
		t.Errorf("warn missing: %q", b.String())
	}
	// Defaults.
	if _, err := NewLogger(io.Discard, "", ""); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
	// Rejections.
	if _, err := NewLogger(io.Discard, "loud", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(io.Discard, "info", "xml"); err == nil {
		t.Error("bad format accepted")
	}
	// Discard never emits.
	Discard().Error("nothing")
}

// BenchmarkPromRender measures 16 scrape pages per iteration: a single
// page renders in a few µs, which under the CI gate's -benchtime 100x
// protocol is dominated by scheduling noise, so the cost is amortized to
// keep the regression gate stable. Per-page cost is ns/op ÷ 16.
func BenchmarkPromRender(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for page := 0; page < 16; page++ {
			// Representative of one /metrics?format=prometheus page:
			// ~30 families, a few labeled series.
			p := NewProm(io.Discard)
			for j := 0; j < 24; j++ {
				p.Family("daglayer_requests_total", "counter", "HTTP requests served by the daemon.")
				p.Value("daglayer_requests_total", float64(j*100+i%7))
			}
			for j := 0; j < 6; j++ {
				p.Family("daglayer_worker_epochs_total", "counter", "Completed epochs per worker.")
				p.ValueL("daglayer_worker_epochs_total", float64(j), "worker", "w-01")
				p.ValueL("daglayer_worker_epochs_total", float64(j), "worker", "w-02")
				p.ValueL("daglayer_latency_ms", 12.75, "quantile", "0.99")
			}
			if p.Err() != nil {
				b.Fatal(p.Err())
			}
		}
	}
}
