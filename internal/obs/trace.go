// Package obs is the daemon's dependency-free observability kit: request
// traces with bounded in-memory retention, a hand-rolled Prometheus text
// writer, runtime gauges, and slog construction shared by the CLIs
// (DESIGN.md §14).
//
// A Trace is a fixed-capacity span buffer created once per request (or
// batch job) and threaded through the stack by context. Recording a span
// on an existing trace never allocates — the hot path (cache hits on
// /layer) pays two mutex operations and two monotonic clock reads per
// span, nothing else. Every method is safe on a nil *Trace so untraced
// call sites need no guards.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// MaxSpans bounds the spans one trace retains. A 4-worker, 10-epoch
// distributed run produces ~65 spans (per-worker per-epoch plus
// coordinator barriers); 128 leaves headroom without making the ring
// expensive. Beyond it spans are counted, not stored.
const MaxSpans = 128

// Span is one timed region of a trace. Offsets are relative to the
// trace start in microseconds — small enough to read raw, precise
// enough for sub-millisecond server spans — so spans serialize
// compactly in report frames and /traces bodies.
type Span struct {
	// Name is the span's slot in the taxonomy (DESIGN.md §14): parse,
	// cache_lookup, coalesce_wait, queue_wait, compute, render,
	// admission, lease, epoch, migrate, assemble, worker_epoch.
	Name string `json:"name"`
	// Worker names the shard worker that measured the span; empty for
	// coordinator- and server-side spans.
	Worker string `json:"worker,omitempty"`
	// Epoch is the 1-based epoch number for epoch/migrate/worker_epoch
	// spans; 0 elsewhere.
	Epoch int `json:"epoch,omitempty"`
	// StartUS is the span's start offset from the trace start. Worker
	// spans are rebased onto the coordinator clock at the run-frame
	// dispatch offset, so cross-process offsets are approximate by one
	// network hop.
	StartUS int64 `json:"start_us"`
	DurUS   int64 `json:"dur_us"`
}

// Trace accumulates spans for one request. Create with Tracer.New (or
// NewTrace for detached use, e.g. worker-side measurement); recording
// is concurrency-safe and allocation-free.
type Trace struct {
	id    string
	start time.Time

	mu      sync.Mutex
	n       int
	dropped int
	dur     time.Duration
	done    bool
	spans   [MaxSpans]Span

	// Retention flags owned by the Tracer's lock, not mu.
	inRing, inSlow bool
}

// NewTrace returns a detached trace (not registered with any Tracer)
// whose clock starts now. id may be empty.
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace ID, or "" on a nil trace.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start returns the trace's start time (zero on nil).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Since returns the elapsed offset from the trace start, the value to
// pass to Observe for a span beginning now.
func (t *Trace) Since() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Observe records a fully-formed span. start is the offset from the
// trace start. Records beyond MaxSpans are counted as dropped.
func (t *Trace) Observe(name, worker string, epoch int, start, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.n < MaxSpans {
		t.spans[t.n] = Span{
			Name:    name,
			Worker:  worker,
			Epoch:   epoch,
			StartUS: start.Microseconds(),
			DurUS:   dur.Microseconds(),
		}
		t.n++
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// SpanHandle is an in-progress span. The zero handle (from a nil trace)
// is inert.
type SpanHandle struct {
	t     *Trace
	name  string
	start time.Duration
}

// Begin opens a span named name starting now. End it to record;
// abandoning the handle records nothing.
func (t *Trace) Begin(name string) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	return SpanHandle{t: t, name: name, start: time.Since(t.start)}
}

// End records the span opened by Begin.
func (h SpanHandle) End() {
	if h.t == nil {
		return
	}
	h.t.Observe(h.name, "", 0, h.start, time.Since(h.t.start)-h.start)
}

// Merge appends pre-measured spans (a worker's report) with their start
// offsets shifted by rebase — the offset on this trace's clock at which
// the remote clock started.
func (t *Trace) Merge(spans []Span, rebase time.Duration) {
	if t == nil {
		return
	}
	shift := rebase.Microseconds()
	t.mu.Lock()
	for _, s := range spans {
		if t.n >= MaxSpans {
			t.dropped++
			continue
		}
		s.StartUS += shift
		t.spans[t.n] = s
		t.n++
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, t.n)
	copy(out, t.spans[:t.n])
	t.mu.Unlock()
	return out
}

// Dropped returns how many spans were discarded for capacity.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// finish stamps the total duration once; later calls keep the first.
func (t *Trace) finish() time.Duration {
	t.mu.Lock()
	if !t.done {
		t.done = true
		t.dur = time.Since(t.start)
	}
	d := t.dur
	t.mu.Unlock()
	return d
}

// Duration returns the finished duration, or elapsed-so-far for a live
// trace.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return t.dur
	}
	return time.Since(t.start)
}

// Finished reports whether the trace has been completed.
func (t *Trace) Finished() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// NewID returns a fresh 16-hex-character trace ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a constant
		// beats a panic in a telemetry path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidID reports whether s is acceptable as a caller-supplied trace ID
// (X-Request-ID): 1–64 characters drawn from [A-Za-z0-9._-]. Anything
// else is replaced with a generated ID rather than rejected.
func ValidID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

type ctxKey struct{}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
