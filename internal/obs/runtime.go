package obs

import (
	"runtime"
	"time"
)

// RuntimeStats is the Go-runtime slice of the metrics snapshot:
// goroutine count plus the heap and GC gauges an operator reaches for
// when a latency spike might be allocation pressure rather than queue
// wait. Field names are part of the /metrics JSON contract.
type RuntimeStats struct {
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64  `json:"heap_sys_bytes"`
	HeapObjects    uint64  `json:"heap_objects"`
	NextGCBytes    uint64  `json:"next_gc_bytes"`
	GCCycles       uint32  `json:"gc_cycles"`
	GCPauseTotalMS float64 `json:"gc_pause_total_ms"`
}

// ReadRuntime samples the runtime. ReadMemStats stops the world for
// microseconds; /metrics is polled, not hot.
func ReadRuntime() RuntimeStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return RuntimeStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: m.HeapAlloc,
		HeapSysBytes:   m.HeapSys,
		HeapObjects:    m.HeapObjects,
		NextGCBytes:    m.NextGC,
		GCCycles:       m.NumGC,
		GCPauseTotalMS: float64(m.PauseTotalNs) / float64(time.Millisecond),
	}
}
