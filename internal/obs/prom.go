package obs

import (
	"io"
	"strconv"
)

// Prom writes the Prometheus text exposition format (version 0.0.4) by
// hand — the daemon takes no dependencies, and the format is three line
// shapes. Errors are sticky: callers emit the whole page and check Err
// once.
//
//	p := obs.NewProm(w)
//	p.Family("daglayer_requests_total", "counter", "HTTP requests served.")
//	p.Value("daglayer_requests_total", float64(n))
//	p.ValueL("daglayer_worker_epochs_total", float64(e), "worker", name)
type Prom struct {
	w   io.Writer
	buf []byte
	err error
}

// NewProm returns a writer emitting to w.
func NewProm(w io.Writer) *Prom {
	return &Prom{w: w, buf: make([]byte, 0, 256)}
}

// Err returns the first write error.
func (p *Prom) Err() error { return p.err }

func (p *Prom) flush() {
	if p.err == nil {
		_, p.err = p.w.Write(p.buf)
	}
	p.buf = p.buf[:0]
}

// Family declares a metric family: a # HELP line and a # TYPE line.
// kind is counter, gauge, summary, or histogram. Call once per family,
// immediately before its samples.
func (p *Prom) Family(name, kind, help string) {
	p.buf = append(p.buf, "# HELP "...)
	p.buf = append(p.buf, name...)
	p.buf = append(p.buf, ' ')
	p.buf = appendEscaped(p.buf, help, false)
	p.buf = append(p.buf, "\n# TYPE "...)
	p.buf = append(p.buf, name...)
	p.buf = append(p.buf, ' ')
	p.buf = append(p.buf, kind...)
	p.buf = append(p.buf, '\n')
	p.flush()
}

// Value emits an unlabeled sample.
func (p *Prom) Value(name string, v float64) {
	p.ValueL(name, v)
}

// ValueL emits a sample with labels given as alternating key, value
// strings.
func (p *Prom) ValueL(name string, v float64, labels ...string) {
	p.buf = append(p.buf, name...)
	if len(labels) > 0 {
		p.buf = append(p.buf, '{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				p.buf = append(p.buf, ',')
			}
			p.buf = append(p.buf, labels[i]...)
			p.buf = append(p.buf, '=', '"')
			p.buf = appendEscaped(p.buf, labels[i+1], true)
			p.buf = append(p.buf, '"')
		}
		p.buf = append(p.buf, '}')
	}
	p.buf = append(p.buf, ' ')
	p.buf = appendFloat(p.buf, v)
	p.buf = append(p.buf, '\n')
	p.flush()
}

// appendFloat renders v the way Prometheus clients do: integers bare,
// everything else in shortest-round-trip form.
func appendFloat(b []byte, v float64) []byte {
	if v == float64(int64(v)) {
		return strconv.AppendInt(b, int64(v), 10)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendEscaped escapes backslash and newline; label values (quoted)
// additionally escape double quotes.
func appendEscaped(b []byte, s string, label bool) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '"':
			if label {
				b = append(b, '\\', '"')
			} else {
				b = append(b, c)
			}
		default:
			b = append(b, c)
		}
	}
	return b
}
