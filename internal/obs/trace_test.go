package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	if got := tr.ID(); got != "" {
		t.Errorf("nil ID = %q", got)
	}
	if !tr.Start().IsZero() {
		t.Error("nil Start not zero")
	}
	if tr.Since() != 0 {
		t.Error("nil Since not zero")
	}
	h := tr.Begin("x")
	h.End()
	tr.Observe("x", "", 0, 0, time.Millisecond)
	tr.Merge([]Span{{Name: "y"}}, 0)
	if s := tr.Spans(); s != nil {
		t.Errorf("nil Spans = %v", s)
	}
	if tr.Dropped() != 0 || tr.Duration() != 0 || tr.Finished() {
		t.Error("nil accessors not zero")
	}
	if v := tr.View(); v.ID != "" || v.Spans != nil {
		t.Errorf("nil View = %+v", v)
	}
	var tc *Tracer
	tc.Finish(tr) // must not panic
	if _, ok := tc.Get("x"); ok {
		t.Error("nil tracer Get ok")
	}
	if tc.List(0, 0) != nil {
		t.Error("nil tracer List non-nil")
	}
}

func TestTraceRecordsSpans(t *testing.T) {
	tr := NewTrace("abc")
	h := tr.Begin("parse")
	time.Sleep(time.Millisecond)
	h.End()
	tr.Observe("epoch", "w1", 3, 5*time.Millisecond, 2*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Name != "parse" || spans[0].DurUS < 900 {
		t.Errorf("parse span = %+v", spans[0])
	}
	if spans[1] != (Span{Name: "epoch", Worker: "w1", Epoch: 3, StartUS: 5000, DurUS: 2000}) {
		t.Errorf("epoch span = %+v", spans[1])
	}
}

func TestTraceMergeRebases(t *testing.T) {
	tr := NewTrace("abc")
	tr.Merge([]Span{
		{Name: "worker_epoch", Worker: "w0", Epoch: 1, StartUS: 100, DurUS: 50},
		{Name: "worker_epoch", Worker: "w0", Epoch: 2, StartUS: 200, DurUS: 60},
	}, 10*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].StartUS != 10100 || spans[1].StartUS != 10200 {
		t.Errorf("rebased starts = %d, %d", spans[0].StartUS, spans[1].StartUS)
	}
}

func TestTraceDropsBeyondCapacity(t *testing.T) {
	tr := NewTrace("abc")
	for i := 0; i < MaxSpans+7; i++ {
		tr.Observe("s", "", 0, 0, 0)
	}
	tr.Merge(make([]Span, 3), 0)
	if n := len(tr.Spans()); n != MaxSpans {
		t.Errorf("kept %d spans, want %d", n, MaxSpans)
	}
	if d := tr.Dropped(); d != 10 {
		t.Errorf("dropped = %d, want 10", d)
	}
	if v := tr.View(); v.Dropped != 10 {
		t.Errorf("view dropped = %d", v.Dropped)
	}
}

func TestTraceRecordZeroAlloc(t *testing.T) {
	tr := NewTrace("abc")
	if n := testing.AllocsPerRun(100, func() {
		h := tr.Begin("cache_lookup")
		h.End()
		tr.Observe("render", "", 0, 0, time.Microsecond)
	}); n != 0 {
		t.Errorf("span recording allocates %.1f times per op, want 0", n)
	}
}

func TestNewIDShape(t *testing.T) {
	a, b := NewID(), NewID()
	if len(a) != 16 || !ValidID(a) {
		t.Errorf("NewID = %q", a)
	}
	if a == b {
		t.Error("consecutive IDs equal")
	}
}

func TestValidID(t *testing.T) {
	for _, ok := range []string{"a", "req-42", "A_b.c-D", strings.Repeat("x", 64)} {
		if !ValidID(ok) {
			t.Errorf("ValidID(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "has space", "quote\"", "semi;colon", strings.Repeat("x", 65), "new\nline", "ünicode"} {
		if ValidID(bad) {
			t.Errorf("ValidID(%q) = true", bad)
		}
	}
}

func TestContextCarrier(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("empty context carries a trace")
	}
	tr := NewTrace("abc")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Error("trace lost in context")
	}
}

func TestTracerGetAndFinish(t *testing.T) {
	tc := NewTracer(4, 2)
	tr := tc.New("my-req")
	if tr.ID() != "my-req" {
		t.Errorf("valid caller ID not honored: %q", tr.ID())
	}
	got, ok := tc.Get("my-req")
	if !ok || got != tr {
		t.Error("live trace not visible via Get")
	}
	if tr.Finished() {
		t.Error("finished before Finish")
	}
	tc.Finish(tr)
	if !tr.Finished() {
		t.Error("not finished after Finish")
	}
	d := tr.Duration()
	time.Sleep(2 * time.Millisecond)
	if tr.Duration() != d {
		t.Error("duration moved after finish")
	}
	// Invalid inbound IDs are replaced, not rejected.
	anon := tc.New("bad id!")
	if anon.ID() == "bad id!" || !ValidID(anon.ID()) {
		t.Errorf("invalid ID kept: %q", anon.ID())
	}
}

func TestTracerRingEviction(t *testing.T) {
	tc := NewTracer(2, -1)
	a := tc.New("a")
	tc.New("b")
	tc.New("c") // evicts a
	if _, ok := tc.Get("a"); ok {
		t.Error("evicted trace still indexed")
	}
	for _, id := range []string{"b", "c"} {
		if _, ok := tc.Get(id); !ok {
			t.Errorf("trace %q lost", id)
		}
	}
	_ = a
}

func TestTracerSlowestSurvivesRing(t *testing.T) {
	tc := NewTracer(2, 1)
	slow := tc.New("slow")
	time.Sleep(5 * time.Millisecond)
	tc.Finish(slow)
	for i := 0; i < 5; i++ {
		fast := tc.New(NewID())
		tc.Finish(fast)
	}
	if _, ok := tc.Get("slow"); !ok {
		t.Fatal("slowest trace evicted with the ring")
	}
	views := tc.List(1, 0)
	if len(views) != 1 || views[0].ID != "slow" {
		t.Errorf("List(1) = %+v, want the slow trace first", views)
	}
}

func TestTracerListFilterSortLimit(t *testing.T) {
	tc := NewTracer(8, 4)
	mk := func(id string, d time.Duration) {
		tr := tc.New(id)
		tr.mu.Lock()
		tr.done = true
		tr.dur = d
		tr.mu.Unlock()
	}
	mk("t10", 10*time.Millisecond)
	mk("t30", 30*time.Millisecond)
	mk("t20", 20*time.Millisecond)
	all := tc.List(0, 0)
	if len(all) != 3 || all[0].ID != "t30" || all[1].ID != "t20" || all[2].ID != "t10" {
		t.Errorf("List order = %+v", all)
	}
	if got := tc.List(2, 0); len(got) != 2 {
		t.Errorf("limit ignored: %d", len(got))
	}
	min := tc.List(0, 15*time.Millisecond)
	if len(min) != 2 || min[0].ID != "t30" {
		t.Errorf("min filter = %+v", min)
	}
}

func TestTracerDuplicateIDEviction(t *testing.T) {
	tc := NewTracer(2, -1)
	tc.New("dup")
	newer := tc.New("dup")
	tc.New("x") // evicts the older "dup"
	got, ok := tc.Get("dup")
	if !ok || got != newer {
		t.Error("older duplicate's eviction unindexed the newer trace")
	}
}

// BenchmarkSpanRecord measures span recording 1024 at a time (8 fills of
// the 128-span array, reset between fills so every record stays on the
// real path rather than the saturated dropped-counter path): a single
// Begin/End is ~100ns, which under the CI gate's -benchtime 100x protocol
// is dominated by timer granularity, so the cost is amortized per
// iteration to keep the regression gate stable. Per-span cost is
// ns/op ÷ 1024.
func BenchmarkSpanRecord(b *testing.B) {
	tr := NewTrace("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for batch := 0; batch < 8; batch++ {
			for j := 0; j < MaxSpans; j++ {
				h := tr.Begin("cache_lookup")
				h.End()
			}
			tr.mu.Lock()
			tr.n = 0
			tr.mu.Unlock()
		}
	}
}
