package obs

import (
	"sort"
	"sync"
	"time"
)

// Default retention bounds for NewTracer(0, 0).
const (
	DefaultRing    = 256
	DefaultSlowest = 32
)

// Tracer owns trace retention: a bounded ring of the most recent traces
// plus a slowest-N list that survives ring eviction, so a latency spike
// stays inspectable after the ring has churned past it. Memory is
// strictly bounded by (ring + slowest) × sizeof(Trace).
type Tracer struct {
	mu    sync.Mutex
	ring  []*Trace
	next  int
	byID  map[string]*Trace
	slow  []*Trace // sorted by duration descending, len ≤ slowN
	slowN int
}

// NewTracer returns a tracer retaining the last ring traces and the
// slowest slowest finished ones (0 picks the defaults; negative
// disables that list).
func NewTracer(ring, slowest int) *Tracer {
	if ring <= 0 {
		ring = DefaultRing
	}
	if slowest == 0 {
		slowest = DefaultSlowest
	}
	if slowest < 0 {
		slowest = 0
	}
	return &Tracer{
		ring:  make([]*Trace, 0, ring),
		byID:  make(map[string]*Trace, ring+slowest),
		slowN: slowest,
	}
}

// New creates and retains a trace. id is honored when it is a valid
// caller-supplied ID (ValidID); otherwise a fresh ID is generated. The
// trace is visible to Get/List immediately, before it finishes.
func (tr *Tracer) New(id string) *Trace {
	if !ValidID(id) {
		id = NewID()
	}
	t := NewTrace(id)
	tr.mu.Lock()
	if cap(tr.ring) > len(tr.ring) {
		tr.ring = append(tr.ring, t)
	} else {
		old := tr.ring[tr.next]
		tr.ring[tr.next] = t
		tr.next = (tr.next + 1) % cap(tr.ring)
		old.inRing = false
		tr.dropLocked(old)
	}
	t.inRing = true
	tr.byID[id] = t
	tr.mu.Unlock()
	return t
}

// Finish stamps the trace's total duration and promotes it into the
// slowest-N list if it qualifies. Safe on nil trace or tracer.
func (tr *Tracer) Finish(t *Trace) {
	if tr == nil || t == nil {
		return
	}
	d := t.finish()
	if tr.slowN == 0 {
		return
	}
	tr.mu.Lock()
	if len(tr.slow) == tr.slowN && tr.slow[len(tr.slow)-1].Duration() >= d {
		tr.mu.Unlock()
		return
	}
	if t.inSlow {
		tr.mu.Unlock()
		return
	}
	t.inSlow = true
	tr.slow = append(tr.slow, t)
	sort.Slice(tr.slow, func(i, j int) bool {
		return tr.slow[i].Duration() > tr.slow[j].Duration()
	})
	if len(tr.slow) > tr.slowN {
		evicted := tr.slow[len(tr.slow)-1]
		tr.slow = tr.slow[:len(tr.slow)-1]
		evicted.inSlow = false
		tr.dropLocked(evicted)
	}
	tr.mu.Unlock()
}

// dropLocked removes t from the ID index once no retention list holds
// it. The pointer comparison keeps a newer trace that reused the same
// caller-supplied ID from being unindexed by the older one's eviction.
func (tr *Tracer) dropLocked(t *Trace) {
	if !t.inRing && !t.inSlow && tr.byID[t.id] == t {
		delete(tr.byID, t.id)
	}
}

// Get returns the retained trace with the given ID.
func (tr *Tracer) Get(id string) (*Trace, bool) {
	if tr == nil {
		return nil, false
	}
	tr.mu.Lock()
	t, ok := tr.byID[id]
	tr.mu.Unlock()
	return t, ok
}

// TraceView is the JSON shape of one trace in /traces responses.
type TraceView struct {
	ID       string    `json:"id"`
	Start    time.Time `json:"start"`
	DurMS    float64   `json:"dur_ms"`
	Finished bool      `json:"finished"`
	Spans    []Span    `json:"spans"`
	Dropped  int       `json:"dropped_spans,omitempty"`
}

// View snapshots a trace for serialization.
func (t *Trace) View() TraceView {
	if t == nil {
		return TraceView{}
	}
	t.mu.Lock()
	v := TraceView{
		ID:       t.id,
		Start:    t.start,
		Finished: t.done,
		Spans:    make([]Span, t.n),
		Dropped:  t.dropped,
	}
	copy(v.Spans, t.spans[:t.n])
	dur := t.dur
	if !t.done {
		dur = time.Since(t.start)
	}
	t.mu.Unlock()
	v.DurMS = float64(dur) / float64(time.Millisecond)
	return v
}

// List returns up to limit retained traces at least min long, slowest
// first (limit ≤ 0 means no cap). Live traces are ranked by their
// elapsed time so a stuck request surfaces while still running.
func (tr *Tracer) List(limit int, min time.Duration) []TraceView {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	seen := make(map[*Trace]bool, len(tr.ring)+len(tr.slow))
	all := make([]*Trace, 0, len(tr.ring)+len(tr.slow))
	for _, t := range tr.ring {
		if !seen[t] {
			seen[t] = true
			all = append(all, t)
		}
	}
	for _, t := range tr.slow {
		if !seen[t] {
			seen[t] = true
			all = append(all, t)
		}
	}
	tr.mu.Unlock()
	views := make([]TraceView, 0, len(all))
	for _, t := range all {
		v := t.View()
		if time.Duration(v.DurMS*float64(time.Millisecond)) >= min {
			views = append(views, v)
		}
	}
	sort.Slice(views, func(i, j int) bool {
		if views[i].DurMS != views[j].DurMS {
			return views[i].DurMS > views[j].DurMS
		}
		return views[i].ID < views[j].ID
	})
	if limit > 0 && len(views) > limit {
		views = views[:limit]
	}
	return views
}
