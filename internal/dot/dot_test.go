package dot

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"antlayer/internal/dag"
)

func TestReadBasic(t *testing.T) {
	n, err := ReadString(`digraph G { a -> b; b -> c; a -> c; }`)
	if err != nil {
		t.Fatal(err)
	}
	if n.Graph.N() != 3 || n.Graph.M() != 3 {
		t.Fatalf("n=%d m=%d, want 3, 3", n.Graph.N(), n.Graph.M())
	}
	a, b, c := n.ID["a"], n.ID["b"], n.ID["c"]
	if !n.Graph.HasEdge(a, b) || !n.Graph.HasEdge(b, c) || !n.Graph.HasEdge(a, c) {
		t.Fatal("edges missing")
	}
}

func TestReadEdgeChain(t *testing.T) {
	n, err := ReadString(`digraph { a -> b -> c -> d; }`)
	if err != nil {
		t.Fatal(err)
	}
	if n.Graph.M() != 3 {
		t.Fatalf("chain m=%d, want 3", n.Graph.M())
	}
}

func TestReadAttributes(t *testing.T) {
	n, err := ReadString(`digraph {
		node [shape=box];
		a [label="Vertex A", width=2.5];
		b [width=0.5]
		a -> b [style=dotted];
	}`)
	if err != nil {
		t.Fatal(err)
	}
	a := n.ID["a"]
	if n.Graph.Label(a) != "Vertex A" {
		t.Fatalf("label = %q", n.Graph.Label(a))
	}
	if n.Graph.Width(a) != 2.5 {
		t.Fatalf("width = %g", n.Graph.Width(a))
	}
	if n.Graph.Width(n.ID["b"]) != 0.5 {
		t.Fatalf("width b = %g", n.Graph.Width(n.ID["b"]))
	}
}

func TestReadComments(t *testing.T) {
	n, err := ReadString(`
// leading comment
digraph { /* block
comment */ a -> b; # trailing
}`)
	if err != nil {
		t.Fatal(err)
	}
	if n.Graph.M() != 1 {
		t.Fatalf("m=%d, want 1", n.Graph.M())
	}
}

// TestReadCommentsAndChains is the table-driven coverage of what benchmark
// corpora actually exercise: the three comment forms (//, #, /* */) in
// every position, and multi-edge chains mixed with attribute lists and
// numeric node ids.
func TestReadCommentsAndChains(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		wantN int
		wantM int
		edges [][2]string // named edges that must exist
	}{
		{
			name:  "line comment between statements",
			src:   "digraph {\na -> b; // tail comment\n// full-line comment\nb -> c;\n}",
			wantN: 3, wantM: 2,
			edges: [][2]string{{"a", "b"}, {"b", "c"}},
		},
		{
			name:  "line comment without trailing newline",
			src:   "digraph { a -> b; } // eof comment",
			wantN: 2, wantM: 1,
		},
		{
			name:  "hash comments",
			src:   "# preprocessor-style header\ndigraph {\na -> b # tail\n# between\nb -> c\n}",
			wantN: 3, wantM: 2,
			edges: [][2]string{{"a", "b"}, {"b", "c"}},
		},
		{
			name:  "hash comment without trailing newline",
			src:   "digraph { a -> b; } # eof",
			wantN: 2, wantM: 1,
		},
		{
			name:  "block comment inside an edge statement",
			src:   "digraph { a /* inline */ -> /* again */ b; }",
			wantN: 2, wantM: 1,
			edges: [][2]string{{"a", "b"}},
		},
		{
			name:  "multi-line block comment",
			src:   "digraph {\na -> b;\n/* spans\nseveral\nlines */\nb -> c;\n}",
			wantN: 3, wantM: 2,
		},
		{
			name:  "block comment inside an attribute list",
			src:   `digraph { a [label="A" /* why */ , width=2]; }`,
			wantN: 1, wantM: 0,
		},
		{
			name:  "chain with attribute list",
			src:   `digraph { a -> b -> c [style=dotted, weight=2]; }`,
			wantN: 3, wantM: 2,
			edges: [][2]string{{"a", "b"}, {"b", "c"}},
		},
		{
			name:  "chain of quoted and bare names",
			src:   `digraph { "n 1" -> mid -> "n 2"; }`,
			wantN: 3, wantM: 2,
			edges: [][2]string{{"n 1", "mid"}, {"mid", "n 2"}},
		},
		{
			name:  "unspaced numeric chain",
			src:   `digraph { 1->2->3; }`,
			wantN: 3, wantM: 2,
			edges: [][2]string{{"1", "2"}, {"2", "3"}},
		},
		{
			name:  "numeric ids with attributes and comments",
			src:   "digraph {\n0 [width=1.5]\n0->1 [weight=2] // chain tail\n}",
			wantN: 2, wantM: 1,
			edges: [][2]string{{"0", "1"}},
		},
		{
			name:  "scientific-notation width survives sign handling",
			src:   `digraph { a [width=1.5e+1]; a -> b; }`,
			wantN: 2, wantM: 1,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n, err := ReadString(c.src)
			if err != nil {
				t.Fatal(err)
			}
			if n.Graph.N() != c.wantN || n.Graph.M() != c.wantM {
				t.Fatalf("n=%d m=%d, want %d, %d", n.Graph.N(), n.Graph.M(), c.wantN, c.wantM)
			}
			for _, e := range c.edges {
				u, ok := n.ID[e[0]]
				if !ok {
					t.Fatalf("vertex %q missing", e[0])
				}
				v, ok := n.ID[e[1]]
				if !ok {
					t.Fatalf("vertex %q missing", e[1])
				}
				if !n.Graph.HasEdge(u, v) {
					t.Fatalf("edge %q -> %q missing", e[0], e[1])
				}
			}
		})
	}
}

func TestReadQuotedNames(t *testing.T) {
	n, err := ReadString(`digraph { "node one" -> "node:two"; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.ID["node one"]; !ok {
		t.Fatal("quoted name not registered")
	}
	if _, ok := n.ID["node:two"]; !ok {
		t.Fatal("quoted name with punctuation not registered")
	}
}

func TestReadStrict(t *testing.T) {
	if _, err := ReadString(`strict digraph X { a -> b; }`); err != nil {
		t.Fatal(err)
	}
}

func TestReadRepeatedEdgeTolerated(t *testing.T) {
	n, err := ReadString(`digraph { a -> b; a -> b; }`)
	if err != nil {
		t.Fatal(err)
	}
	if n.Graph.M() != 1 {
		t.Fatalf("m=%d, want 1 (duplicate collapsed)", n.Graph.M())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		``,
		`graph { a -- b; }`,          // undirected
		`digraph { a -> ; }`,         // missing target
		`digraph { a -> a; }`,        // self loop
		`digraph { a -> b`,           // missing brace
		`digraph { a [x] }`,          // malformed attr
		`digraph { } trailing`,       // trailing tokens
		`digraph { "unterminated`,    // unterminated string
		`digraph { a -> b; } }`,      // extra brace
		`digraph { a - b; }`,         // bad arrow
		`digraph { a [width=abc]; }`, // unparsable width value
	}
	for _, src := range cases {
		if _, err := ReadString(src); err == nil {
			t.Errorf("ReadString(%q) succeeded, want error", src)
		}
	}
}

func TestWriteRead(t *testing.T) {
	g := dag.New(4)
	g.SetLabel(0, "start")
	g.SetLabel(1, "a b") // requires quoting
	g.SetWidth(2, 3.5)
	g.MustAddEdge(3, 2)
	g.MustAddEdge(3, 1)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(1, 0)

	var buf bytes.Buffer
	if err := Write(&buf, g, "test"); err != nil {
		t.Fatal(err)
	}
	n, err := Read(&buf)
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\noutput was:\n%s", err, buf.String())
	}
	if n.Graph.N() != 4 || n.Graph.M() != 4 {
		t.Fatalf("round trip: n=%d m=%d", n.Graph.N(), n.Graph.M())
	}
	// Width survives.
	found := false
	for v := 0; v < n.Graph.N(); v++ {
		if n.Graph.Width(v) == 3.5 {
			found = true
		}
	}
	if !found {
		t.Fatal("width lost in round trip")
	}
}

func TestWriteIsolatedVertex(t *testing.T) {
	g := dag.New(2)
	g.MustAddEdge(1, 0)
	g2 := dag.New(3) // vertex 2 isolated
	g2.MustAddEdge(1, 0)
	var buf bytes.Buffer
	if err := Write(&buf, g2, ""); err != nil {
		t.Fatal(err)
	}
	n, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n.Graph.N() != 3 {
		t.Fatalf("isolated vertex lost: n=%d", n.Graph.N())
	}
	_ = g
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		n := 2 + rng.Intn(25)
		g := dag.New(n)
		for tries := 0; tries < n*2; tries++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if u < v {
				u, v = v, u
			}
			if !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, g, "r"); err != nil {
			t.Fatal(err)
		}
		parsed, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if parsed.Graph.N() != g.N() || parsed.Graph.M() != g.M() {
			t.Fatalf("round trip size mismatch: (%d,%d) vs (%d,%d)",
				parsed.Graph.N(), parsed.Graph.M(), g.N(), g.M())
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := dag.New(5)
	g.MustAddEdge(4, 2)
	g.MustAddEdge(3, 1)
	g.MustAddEdge(2, 0)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("edge list round trip changed graph")
	}
}

func TestEdgeListComments(t *testing.T) {
	src := "# corpus graph\n3 2\n\n2 1\n# mid comment\n1 0\n"
	g, err := ReadEdgeList(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
}

func TestEdgeListErrors(t *testing.T) {
	cases := []string{
		"",
		"x y",
		"-1 2",
		"3 2\n1 1",      // self loop
		"3 5\n2 1",      // truncated
		"2 1\n5 0",      // out of range
		"2 2\n1 0\n1 0", // duplicate
	}
	for _, src := range cases {
		if _, err := ReadEdgeList(strings.NewReader(src)); err == nil {
			t.Errorf("ReadEdgeList(%q) succeeded, want error", src)
		}
	}
}

func TestNamedVertexReuse(t *testing.T) {
	n := NewNamed()
	a1 := n.Vertex("a")
	a2 := n.Vertex("a")
	if a1 != a2 {
		t.Fatal("Vertex created duplicate for same name")
	}
	b := n.Vertex("b")
	if b == a1 {
		t.Fatal("distinct names share a vertex")
	}
	names := n.SortedNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("SortedNames = %v", names)
	}
}

func TestQuoteIfNeeded(t *testing.T) {
	cases := map[string]string{
		"abc":  "abc",
		"a_b1": "a_b1",
		"1abc": `"1abc"`,
		"a b":  `"a b"`,
		"":     `""`,
		"a-b":  `"a-b"`,
	}
	for in, want := range cases {
		if got := quoteIfNeeded(in); got != want {
			t.Errorf("quoteIfNeeded(%q) = %s, want %s", in, got, want)
		}
	}
}
