package dot

import (
	"bytes"
	"strings"
	"testing"

	"antlayer/internal/dag"
	"antlayer/internal/layering"
)

func TestWriteLayered(t *testing.T) {
	g := dag.New(4)
	g.SetLabel(0, "sink")
	g.MustAddEdge(3, 2)
	g.MustAddEdge(3, 1)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(1, 0)
	l, err := layering.New(g, []int{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLayered(&buf, l, "demo"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "rank=same") != 3 {
		t.Fatalf("want 3 rank=same groups:\n%s", out)
	}
	if !strings.Contains(out, "sink") {
		t.Fatal("label lost")
	}
	// Top layer emitted first.
	if strings.Index(out, "__rank3") > strings.Index(out, "rank=same; __rank1") &&
		strings.Index(out, "rank=same; __rank3") > strings.Index(out, "rank=same; __rank1") {
		t.Fatalf("layer order wrong:\n%s", out)
	}
	if !strings.Contains(out, "style=invis") {
		t.Fatal("anchor chain missing")
	}
}

func TestWriteLayeredInvalid(t *testing.T) {
	g := dag.New(2)
	g.MustAddEdge(1, 0)
	bad := layering.FromAssignment(g, []int{2, 1})
	if err := WriteLayered(new(bytes.Buffer), bad, ""); err == nil {
		t.Fatal("invalid layering accepted")
	}
}
