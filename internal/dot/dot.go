// Package dot reads and writes graphs in a practical subset of the Graphviz
// DOT language and in a compact edge-list format.
//
// The DOT subset covers what graph-drawing benchmark corpora (such as the
// AT&T graphs the paper evaluated on) actually use: a single
// "digraph name { ... }" block containing node statements with optional
// [label="...", width=1.5] attribute lists and edge statements
// "a -> b -> c;". Subgraphs, ports and HTML labels are not supported.
package dot

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"antlayer/internal/dag"
)

// Named wraps a Graph together with the mapping between external node names
// and internal dense vertex identifiers.
type Named struct {
	Graph *dag.Graph
	// Names[v] is the external name of vertex v.
	Names []string
	// ID maps an external name to its vertex.
	ID map[string]int
}

// NewNamed returns an empty named graph.
func NewNamed() *Named {
	return &Named{Graph: dag.New(0), ID: map[string]int{}}
}

// Vertex returns the vertex for name, creating it on first use.
func (n *Named) Vertex(name string) int {
	if v, ok := n.ID[name]; ok {
		return v
	}
	v := n.Graph.AddVertex()
	n.Graph.SetLabel(v, name)
	n.Names = append(n.Names, name)
	n.ID[name] = v
	return v
}

// Write serialises g in DOT format. Vertex names are the graph labels when
// set and v<N> otherwise. Non-default widths are emitted as width attributes.
func Write(w io.Writer, g *dag.Graph, graphName string) error {
	if graphName == "" {
		graphName = "G"
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %s {\n", quoteIfNeeded(graphName))
	for v := 0; v < g.N(); v++ {
		var attrs []string
		if g.Label(v) != "" && g.Label(v) != nodeName(g, v) {
			attrs = append(attrs, fmt.Sprintf("label=%s", quoteIfNeeded(g.Label(v))))
		}
		if g.Width(v) != 1.0 {
			attrs = append(attrs, fmt.Sprintf("width=%s", strconv.FormatFloat(g.Width(v), 'g', -1, 64)))
		}
		if len(attrs) > 0 || (g.InDegree(v) == 0 && g.OutDegree(v) == 0) {
			fmt.Fprintf(bw, "\t%s", quoteIfNeeded(nodeName(g, v)))
			if len(attrs) > 0 {
				fmt.Fprintf(bw, " [%s]", strings.Join(attrs, ", "))
			}
			fmt.Fprintln(bw, ";")
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "\t%s -> %s;\n", quoteIfNeeded(nodeName(g, e.U)), quoteIfNeeded(nodeName(g, e.V)))
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// nodeName returns the external name used for v when writing.
func nodeName(g *dag.Graph, v int) string {
	if l := g.Label(v); l != "" {
		return l
	}
	return "v" + strconv.Itoa(v)
}

func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	plain := true
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				plain = false
			}
		default:
			plain = false
		}
		if !plain {
			break
		}
	}
	if plain {
		return s
	}
	// Minimal DOT quoting that round-trips through readQuoted: only the
	// backslash, the quote, newline and tab need escaping; all other
	// runes (including non-ASCII) pass through verbatim.
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Read parses DOT input and returns the named graph.
func Read(r io.Reader) (*Named, error) {
	toks, err := tokenize(r)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parse()
}

// ReadString is Read over a string.
func ReadString(s string) (*Named, error) {
	return Read(strings.NewReader(s))
}

// WriteEdgeList serialises g as "n m" followed by one "u v" line per edge.
// The format is the storage format of the benchmark corpus directory
// produced by cmd/corpusgen.
func WriteEdgeList(w io.Writer, g *dag.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", g.N(), g.M())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
	}
	return bw.Flush()
}

// MaxEdgeListVertices bounds the vertex count ReadEdgeList accepts, so a
// corrupt header cannot force a multi-gigabyte allocation.
const MaxEdgeListVertices = 1 << 22

// ReadEdgeList parses the edge-list format written by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*dag.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line, err := nextLine(sc)
	if err != nil {
		return nil, fmt.Errorf("dot: edge list header: %w", err)
	}
	var n, m int
	if _, err := fmt.Sscanf(line, "%d %d", &n, &m); err != nil {
		return nil, fmt.Errorf("dot: bad edge list header %q: %w", line, err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("dot: negative counts in header %q", line)
	}
	if n > MaxEdgeListVertices {
		return nil, fmt.Errorf("dot: header claims %d vertices, limit %d", n, MaxEdgeListVertices)
	}
	if max := n * (n - 1) / 2; m > max {
		return nil, fmt.Errorf("dot: header claims %d edges, simple-DAG maximum for n=%d is %d", m, n, max)
	}
	g := dag.New(n)
	for i := 0; i < m; i++ {
		line, err := nextLine(sc)
		if err != nil {
			return nil, fmt.Errorf("dot: edge %d/%d: %w", i+1, m, err)
		}
		var u, v int
		if _, err := fmt.Sscanf(line, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("dot: bad edge line %q: %w", line, err)
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// ReadEdgeListNamed is ReadEdgeList plus the v<N> name synthesis shared
// by every consumer that renders or reports vertices: edge lists carry no
// names, so vertex v is named (and labelled) "v<N>", the same fallback
// Write uses.
func ReadEdgeListNamed(r io.Reader) (*dag.Graph, []string, error) {
	g, err := ReadEdgeList(r)
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, g.N())
	for v := range names {
		names[v] = fmt.Sprintf("v%d", v)
		g.SetLabel(v, names[v])
	}
	return g, names, nil
}

func nextLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		return s, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

// SortedNames returns the node names sorted; useful for deterministic tests.
func (n *Named) SortedNames() []string {
	out := append([]string(nil), n.Names...)
	sort.Strings(out)
	return out
}
