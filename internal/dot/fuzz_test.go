package dot

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"antlayer/internal/dag"
)

// TestParserNeverPanics feeds the tokenizer/parser random byte soup and
// asserts it fails gracefully (error or success, never a panic). The
// parser guards a CLI entry point, so robustness against hostile input is
// part of its contract.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(150))
	alphabet := []byte(`digraph{}[];,="->ab \n\t/**/#`)
	for i := 0; i < 500; i++ {
		n := rng.Intn(120)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", b, r)
				}
			}()
			_, _ = Read(bytes.NewReader(b))
		}()
	}
}

// TestEdgeListNeverPanics does the same for the edge-list reader.
func TestEdgeListNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	alphabet := []byte("0123456789 -\n#x")
	for i := 0; i < 500; i++ {
		n := rng.Intn(80)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("edge list reader panicked on %q: %v", b, r)
				}
			}()
			_, _ = ReadEdgeList(bytes.NewReader(b))
		}()
	}
}

// TestLabelRoundTripQuick writes graphs whose labels contain arbitrary
// strings and checks they survive the DOT round trip.
func TestLabelRoundTripQuick(t *testing.T) {
	f := func(label string) bool {
		// The writer emits quoted strings; control characters other than
		// \n and \t are outside the supported subset.
		for _, r := range label {
			if r < 0x20 && r != '\n' && r != '\t' {
				return true
			}
		}
		g := dag.New(2)
		g.MustAddEdge(1, 0)
		g.SetLabel(0, label)
		var buf bytes.Buffer
		if err := Write(&buf, g, "q"); err != nil {
			return false
		}
		parsed, err := Read(&buf)
		if err != nil {
			return false
		}
		if label == "" {
			return true // empty labels fall back to generated names
		}
		for v := 0; v < parsed.Graph.N(); v++ {
			if parsed.Graph.Label(v) == label {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
