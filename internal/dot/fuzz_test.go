package dot

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"antlayer/internal/dag"
)

// TestParserNeverPanics feeds the tokenizer/parser random byte soup and
// asserts it fails gracefully (error or success, never a panic). The
// parser guards a CLI entry point, so robustness against hostile input is
// part of its contract.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(150))
	alphabet := []byte(`digraph{}[];,="->ab \n\t/**/#`)
	for i := 0; i < 500; i++ {
		n := rng.Intn(120)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", b, r)
				}
			}()
			_, _ = Read(bytes.NewReader(b))
		}()
	}
}

// TestEdgeListNeverPanics does the same for the edge-list reader.
func TestEdgeListNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	alphabet := []byte("0123456789 -\n#x")
	for i := 0; i < 500; i++ {
		n := rng.Intn(80)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("edge list reader panicked on %q: %v", b, r)
				}
			}()
			_, _ = ReadEdgeList(bytes.NewReader(b))
		}()
	}
}

// FuzzReadEdgeListNamed mirrors the DOT soup harness for the edge-list
// reader guarding the /layer, /jobs and `daglayer batch` entry points:
// whatever the bytes, the reader must return a clean error or a
// well-formed named graph, never panic. The seed corpus walks the
// documented failure modes — malformed lines, truncated bodies, duplicate
// edges and self-loops (which must error: dag.Graph rejects both), header
// lies — so plain `go test` already exercises each rejection path, and
// `go test -fuzz=FuzzReadEdgeListNamed` explores from there.
func FuzzReadEdgeListNamed(f *testing.F) {
	for _, seed := range []string{
		"",                         // empty input: header missing
		"3 2\n2 1\n1 0\n",          // well-formed
		"# comment\n\n3 1\n2 0\n",  // comments and blank lines skipped
		"2 1\n1 1\n",               // self-loop must error
		"3 2\n2 1\n2 1\n",          // duplicate edge must error
		"2 1\n5 0\n",               // endpoint out of range
		"3 2\n2 1\n",               // truncated: fewer edges than claimed
		"3 99\n2 1\n1 0\n",         // header claims impossible edge count
		"-1 -1\n",                  // negative counts
		"99999999999999999999 1\n", // header overflow
		"3 2\n2 one\n1 0\n",        // non-numeric endpoint
		"x y\n",                    // non-numeric header
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data string) {
		g, names, err := ReadEdgeListNamed(strings.NewReader(data))
		if err != nil {
			if g != nil || names != nil {
				t.Fatalf("error %v alongside non-nil graph/names", err)
			}
			return
		}
		// A successful parse must uphold the contract every consumer
		// leans on: one synthesised v<N> name and label per vertex...
		if len(names) != g.N() {
			t.Fatalf("%d names for %d vertices", len(names), g.N())
		}
		for v, name := range names {
			if want := fmt.Sprintf("v%d", v); name != want || g.Label(v) != want {
				t.Fatalf("vertex %d named %q, labelled %q, want %q", v, name, g.Label(v), want)
			}
		}
		// ...a simple graph (no self-loops, no duplicates)...
		seen := map[[2]int]bool{}
		for _, e := range g.Edges() {
			if e.U == e.V {
				t.Fatalf("self-loop (%d,%d) survived", e.U, e.V)
			}
			if seen[[2]int{e.U, e.V}] {
				t.Fatalf("duplicate edge (%d,%d) survived", e.U, e.V)
			}
			seen[[2]int{e.U, e.V}] = true
		}
		// ...and a round trip through the writer.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		h, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if h.N() != g.N() || h.M() != g.M() {
			t.Fatalf("round trip: n=%d m=%d, want n=%d m=%d", h.N(), h.M(), g.N(), g.M())
		}
	})
}

// TestLabelRoundTripQuick writes graphs whose labels contain arbitrary
// strings and checks they survive the DOT round trip.
func TestLabelRoundTripQuick(t *testing.T) {
	f := func(label string) bool {
		// The writer emits quoted strings; control characters other than
		// \n and \t are outside the supported subset.
		for _, r := range label {
			if r < 0x20 && r != '\n' && r != '\t' {
				return true
			}
		}
		g := dag.New(2)
		g.MustAddEdge(1, 0)
		g.SetLabel(0, label)
		var buf bytes.Buffer
		if err := Write(&buf, g, "q"); err != nil {
			return false
		}
		parsed, err := Read(&buf)
		if err != nil {
			return false
		}
		if label == "" {
			return true // empty labels fall back to generated names
		}
		for v := 0; v < parsed.Graph.N(); v++ {
			if parsed.Graph.Label(v) == label {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
