package dot

import (
	"bufio"
	"fmt"
	"io"

	"antlayer/internal/layering"
)

// WriteLayered serialises a layering as a Graphviz-compatible DOT document
// in which every layer becomes a `rank=same` subgraph, so external tools
// render exactly the layer assignment this library computed. The topmost
// layer is emitted first; invisible chain edges between per-layer anchor
// nodes pin the vertical order.
func WriteLayered(w io.Writer, l *layering.Layering, graphName string) error {
	if err := l.Validate(); err != nil {
		return err
	}
	if graphName == "" {
		graphName = "G"
	}
	g := l.Graph()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %s {\n", quoteIfNeeded(graphName))
	fmt.Fprintln(bw, "\trankdir=TB;")

	layers := l.Layers()
	// Anchor chain: one invisible node per layer, top layer first.
	fmt.Fprint(bw, "\t")
	for li := len(layers); li >= 1; li-- {
		fmt.Fprintf(bw, "__rank%d", li)
		if li > 1 {
			fmt.Fprint(bw, " -> ")
		}
	}
	fmt.Fprintln(bw, " [style=invis];")
	for li := len(layers); li >= 1; li-- {
		fmt.Fprintf(bw, "\t__rank%d [style=invis, shape=point, width=0];\n", li)
	}

	for li := len(layers); li >= 1; li-- {
		fmt.Fprintf(bw, "\t{ rank=same; __rank%d;", li)
		for _, v := range layers[li-1] {
			fmt.Fprintf(bw, " %s;", quoteIfNeeded(nodeName(g, v)))
		}
		fmt.Fprintln(bw, " }")
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "\t%s -> %s;\n", quoteIfNeeded(nodeName(g, e.U)), quoteIfNeeded(nodeName(g, e.V)))
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
