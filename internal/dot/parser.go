package dot

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"
)

// token kinds for the DOT subset lexer.
type tokKind int

const (
	tokIdent tokKind = iota
	tokString
	tokNumber
	tokArrow  // ->
	tokLBrace // {
	tokRBrace // }
	tokLBrack // [
	tokRBrack // ]
	tokSemi   // ;
	tokComma  // ,
	tokEquals // =
	tokEOF
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return strconv.Quote(t.text)
}

// tokenize lexes the DOT subset: identifiers, quoted strings, numbers,
// punctuation, // and /* */ and # comments.
func tokenize(r io.Reader) ([]token, error) {
	br := bufio.NewReader(r)
	var toks []token
	line := 1
	for {
		c, _, err := br.ReadRune()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch {
		case c == '\n':
			line++
		case unicode.IsSpace(c):
		case c == '/':
			c2, _, err := br.ReadRune()
			if err != nil {
				return nil, fmt.Errorf("dot: line %d: stray '/'", line)
			}
			switch c2 {
			case '/':
				if err := skipLine(br); err != nil {
					return nil, err
				}
				line++
			case '*':
				n, err := skipBlockComment(br)
				if err != nil {
					return nil, fmt.Errorf("dot: line %d: %w", line, err)
				}
				line += n
			default:
				return nil, fmt.Errorf("dot: line %d: stray '/'", line)
			}
		case c == '#':
			if err := skipLine(br); err != nil {
				return nil, err
			}
			line++
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", line})
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", line})
		case c == '[':
			toks = append(toks, token{tokLBrack, "[", line})
		case c == ']':
			toks = append(toks, token{tokRBrack, "]", line})
		case c == ';':
			toks = append(toks, token{tokSemi, ";", line})
		case c == ',':
			toks = append(toks, token{tokComma, ",", line})
		case c == '=':
			toks = append(toks, token{tokEquals, "=", line})
		case c == '-':
			c2, _, err := br.ReadRune()
			if err != nil || c2 != '>' {
				return nil, fmt.Errorf("dot: line %d: expected '->' (undirected graphs unsupported)", line)
			}
			toks = append(toks, token{tokArrow, "->", line})
		case c == '"':
			s, n, err := readQuoted(br)
			if err != nil {
				return nil, fmt.Errorf("dot: line %d: %w", line, err)
			}
			toks = append(toks, token{tokString, s, line})
			line += n
		case unicode.IsLetter(c) || c == '_':
			s, err := readWhile(br, string(c), func(r rune) bool {
				return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
			})
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{tokIdent, s, line})
		case unicode.IsDigit(c) || c == '.':
			// A sign only continues the number directly after an exponent
			// marker: otherwise "1->2" would lex as the number "1-" and
			// break unspaced numeric edge chains.
			prev := c
			s, err := readWhile(br, string(c), func(r rune) bool {
				ok := unicode.IsDigit(r) || r == '.' || r == 'e' || r == 'E' ||
					((r == '+' || r == '-') && (prev == 'e' || prev == 'E'))
				prev = r
				return ok
			})
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{tokNumber, s, line})
		default:
			return nil, fmt.Errorf("dot: line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

func skipLine(br *bufio.Reader) error {
	_, err := br.ReadString('\n')
	if err == io.EOF {
		return nil
	}
	return err
}

func skipBlockComment(br *bufio.Reader) (lines int, err error) {
	prev := rune(0)
	for {
		c, _, err := br.ReadRune()
		if err != nil {
			return lines, errors.New("unterminated block comment")
		}
		if c == '\n' {
			lines++
		}
		if prev == '*' && c == '/' {
			return lines, nil
		}
		prev = c
	}
}

func readQuoted(br *bufio.Reader) (s string, lines int, err error) {
	var b strings.Builder
	for {
		c, _, err := br.ReadRune()
		if err != nil {
			return "", lines, errors.New("unterminated string")
		}
		switch c {
		case '"':
			return b.String(), lines, nil
		case '\\':
			c2, _, err := br.ReadRune()
			if err != nil {
				return "", lines, errors.New("unterminated string escape")
			}
			switch c2 {
			case 'n':
				b.WriteRune('\n')
			case 't':
				b.WriteRune('\t')
			default:
				b.WriteRune(c2)
			}
		case '\n':
			lines++
			b.WriteRune(c)
		default:
			b.WriteRune(c)
		}
	}
}

func readWhile(br *bufio.Reader, prefix string, ok func(rune) bool) (string, error) {
	var b strings.Builder
	b.WriteString(prefix)
	for {
		c, _, err := br.ReadRune()
		if err == io.EOF {
			return b.String(), nil
		}
		if err != nil {
			return "", err
		}
		if !ok(c) {
			if err := br.UnreadRune(); err != nil {
				return "", err
			}
			return b.String(), nil
		}
		b.WriteRune(c)
	}
}

// parser consumes the token stream for a single digraph block.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("dot: line %d: expected %s, found %s", t.line, what, t)
	}
	return t, nil
}

func (p *parser) parse() (*Named, error) {
	t := p.next()
	if t.kind == tokIdent && strings.EqualFold(t.text, "strict") {
		t = p.next()
	}
	if t.kind != tokIdent || !strings.EqualFold(t.text, "digraph") {
		return nil, fmt.Errorf("dot: line %d: expected 'digraph', found %s", t.line, t)
	}
	// Optional graph name.
	if k := p.peek().kind; k == tokIdent || k == tokString || k == tokNumber {
		p.next()
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	n := NewNamed()
	for {
		t := p.peek()
		switch t.kind {
		case tokRBrace:
			p.next()
			if p.peek().kind != tokEOF {
				return nil, fmt.Errorf("dot: line %d: trailing input after '}'", p.peek().line)
			}
			if err := n.Graph.Validate(); err != nil {
				return nil, err
			}
			return n, nil
		case tokEOF:
			return nil, fmt.Errorf("dot: line %d: missing '}'", t.line)
		case tokSemi:
			p.next()
		case tokIdent, tokString, tokNumber:
			if err := p.statement(n); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("dot: line %d: unexpected %s", t.line, t)
		}
	}
}

// statement parses a node statement, an edge chain, or a graph-attribute
// statement (graph/node/edge defaults, which are parsed and ignored).
func (p *parser) statement(n *Named) error {
	first := p.next()
	name := first.text
	if first.kind == tokIdent {
		switch strings.ToLower(name) {
		case "graph", "node", "edge":
			if p.peek().kind == tokLBrack {
				_, err := p.attrList()
				return err
			}
		}
	}
	// Edge chain a -> b -> c [attrs];
	if p.peek().kind == tokArrow {
		prev := n.Vertex(name)
		for p.peek().kind == tokArrow {
			p.next()
			t := p.next()
			if t.kind != tokIdent && t.kind != tokString && t.kind != tokNumber {
				return fmt.Errorf("dot: line %d: expected node name after '->', found %s", t.line, t)
			}
			cur := n.Vertex(t.text)
			if prev == cur {
				return fmt.Errorf("dot: line %d: self-loop on %q", t.line, t.text)
			}
			// Tolerate repeated edges in the input; keep the first.
			if !n.Graph.HasEdge(prev, cur) {
				if err := n.Graph.AddEdge(prev, cur); err != nil {
					return err
				}
			}
			prev = cur
		}
		if p.peek().kind == tokLBrack {
			if _, err := p.attrList(); err != nil {
				return err
			}
		}
		return nil
	}
	// Node statement with optional attributes.
	v := n.Vertex(name)
	if p.peek().kind == tokLBrack {
		attrs, err := p.attrList()
		if err != nil {
			return err
		}
		if label, ok := attrs["label"]; ok {
			n.Graph.SetLabel(v, label)
		}
		if ws, ok := attrs["width"]; ok {
			w, err := strconv.ParseFloat(ws, 64)
			if err != nil {
				return fmt.Errorf("dot: bad width %q for node %q: %w", ws, name, err)
			}
			n.Graph.SetWidth(v, w)
		}
	}
	return nil
}

func (p *parser) attrList() (map[string]string, error) {
	if _, err := p.expect(tokLBrack, "'['"); err != nil {
		return nil, err
	}
	attrs := map[string]string{}
	for {
		t := p.next()
		if t.kind == tokRBrack {
			return attrs, nil
		}
		if t.kind != tokIdent && t.kind != tokString {
			return nil, fmt.Errorf("dot: line %d: expected attribute name, found %s", t.line, t)
		}
		if _, err := p.expect(tokEquals, "'='"); err != nil {
			return nil, err
		}
		val := p.next()
		if val.kind != tokIdent && val.kind != tokString && val.kind != tokNumber {
			return nil, fmt.Errorf("dot: line %d: expected attribute value, found %s", val.line, val)
		}
		attrs[strings.ToLower(t.text)] = val.text
		if p.peek().kind == tokComma || p.peek().kind == tokSemi {
			p.next()
		}
	}
}
