// Package batch provides a bounded asynchronous job queue with a fixed
// worker pool — the engine behind the HTTP daemon's /jobs API and the
// `daglayer batch` CLI mode.
//
// A job is an opaque func(ctx) ([]byte, error). Submit enqueues it (or
// fails fast with ErrQueueFull when the backlog bound is hit — callers
// surface that as HTTP 429), a worker runs it under a context descending
// from the queue's lifetime, and the job object tracks its way through
// queued → running → done|failed. Cancel aborts a job at any point before
// completion: a still-queued job fails immediately without ever running,
// a running one has its context cancelled and fails when the work unwinds
// (the ant colony's RunContext observes the context within one ant walk
// per worker, so cancellation is prompt). Terminal jobs are retained for
// polling, bounded by Config.Retain — the oldest terminal job is evicted
// first, so memory stays bounded no matter how many jobs flow through —
// and, when Config.ExpireAfter is set, by age as well (a background
// sweep evicts terminal jobs past the TTL). List enumerates the tracked
// jobs, optionally filtered by state.
//
// All methods are safe for concurrent use.
package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// State is a job's position in its lifecycle.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether a job in this state is finished (done,
// failed, or swept as expired) and will never change state again.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed || s == StateExpired }

// Common queue errors.
var (
	// ErrQueueFull reports that Submit found the backlog at capacity.
	ErrQueueFull = errors.New("batch: queue full")
	// ErrClosed reports a Submit after Close.
	ErrClosed = errors.New("batch: queue closed")
	// ErrCanceled is the failure error of a job cancelled by Cancel. It
	// wraps context.Canceled so errors.Is(err, context.Canceled) holds on
	// both the queued-cancel and running-cancel paths.
	ErrCanceled = fmt.Errorf("batch: job canceled by caller: %w", context.Canceled)
)

// Func is the work a job performs. It must honour ctx: the queue cancels
// it on Cancel and on Close.
type Func func(ctx context.Context) ([]byte, error)

// Config tunes a Queue. The zero value is usable; every field falls back
// to the documented default.
type Config struct {
	// Workers is the pool size — how many jobs run concurrently.
	// 0 means GOMAXPROCS.
	Workers int
	// Depth bounds the backlog: at most Depth jobs may sit queued (not
	// yet running) at once; Submit beyond that returns ErrQueueFull.
	// 0 means 64.
	Depth int
	// Retain bounds how many terminal (done/failed) jobs are kept for
	// Get; the oldest is evicted first. 0 means 256; negative retains
	// nothing.
	Retain int
	// ExpireAfter, when positive, additionally bounds how long a
	// terminal job stays pollable: a background sweep evicts terminal
	// jobs whose finish time is at least this old, so a mostly idle
	// queue does not pin day-old results in memory waiting for the
	// count bound. 0 disables age-based expiry.
	ExpireAfter time.Duration
	// EventRing bounds the pub/sub replay ring: how many recent job
	// state transitions Events retains for Last-Event-ID-style replay.
	// 0 means 1024.
	EventRing int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Depth == 0 {
		c.Depth = 64
	}
	if c.Retain == 0 {
		c.Retain = 256
	}
	return c
}

// Job is one unit of work owned by a Queue. All accessors return
// consistent snapshots; Wait blocks until the job is terminal.
type Job struct {
	id      string
	seq     uint64 // submission order; List sorts by it (ids zero-pad out at 10^6)
	fn      Func
	labels  []string // topics; immutable after Submit
	traceID string   // request trace the job belongs to; immutable after Submit

	mu        sync.Mutex
	state     State
	result    []byte
	err       error
	canceled  bool
	cancel    context.CancelFunc // armed while running
	submitted time.Time
	started   time.Time
	finished  time.Time

	done chan struct{} // closed when the job turns terminal
}

// ID returns the job's queue-unique identifier.
func (j *Job) ID() string { return j.id }

// Snapshot is a consistent point-in-time view of a job.
type Snapshot struct {
	ID    string
	State State
	// Result is the job's output; set when State is StateDone.
	Result []byte
	// Err is the failure; set when State is StateFailed. A cancelled job
	// fails with an error wrapping context.Canceled (see ErrCanceled).
	Err error
	// Canceled reports that the failure was caused by Cancel rather than
	// the work itself.
	Canceled bool
	// Labels are the job's topics (see SubmitLabeled).
	Labels []string
	// TraceID names the request trace the job belongs to (see
	// SubmitTraced); the daemon echoes it on job envelopes so a polled
	// job can be joined with its /traces entry.
	TraceID   string
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
}

// Snapshot returns the job's current state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID:        j.id,
		State:     j.state,
		Result:    j.result,
		Err:       j.err,
		Canceled:  j.canceled,
		Labels:    j.labels,
		TraceID:   j.traceID,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
	}
}

// Done returns a channel closed when the job turns terminal.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job is terminal or ctx is cancelled, returning
// the final snapshot (or the current one alongside ctx's error).
func (j *Job) Wait(ctx context.Context) (Snapshot, error) {
	select {
	case <-j.done:
		return j.Snapshot(), nil
	case <-ctx.Done():
		return j.Snapshot(), ctx.Err()
	}
}

// Stats is a point-in-time summary of a queue, shaped for /metrics.
type Stats struct {
	// Submitted counts every successfully submitted job.
	Submitted int64 `json:"submitted"`
	// Rejected counts Submit calls refused with ErrQueueFull.
	Rejected int64 `json:"rejected"`
	// Queued and Running are gauges; Done, Failed and Canceled count
	// terminal outcomes (Canceled ⊆ Failed).
	Queued   int64 `json:"queued"`
	Running  int64 `json:"running"`
	Done     int64 `json:"done"`
	Failed   int64 `json:"failed"`
	Canceled int64 `json:"canceled"`
	// Expired counts terminal jobs evicted by the age-based retention
	// sweep (count-bound evictions are not included).
	Expired int64 `json:"expired"`
	// Depth is the backlog bound Submit enforces; Workers is the pool
	// size draining it. Together with the Queued gauge they determine
	// RetryAfter.
	Depth   int `json:"depth"`
	Workers int `json:"workers"`
}

// Queue is a bounded job queue with a fixed worker pool. Create with New,
// stop with Close.
type Queue struct {
	cfg        Config
	baseCtx    context.Context
	cancelBase context.CancelFunc
	pending    chan *Job
	events     *Events
	wg         sync.WaitGroup
	sweepStop  chan struct{} // nil when age-based expiry is off
	sweepDone  chan struct{}

	mu        sync.Mutex
	jobs      map[string]*Job
	retention []string // terminal job ids, oldest first
	seq       uint64
	closed    bool
	stats     Stats
}

// New builds a Queue from cfg (zero value fine; see Config) and starts
// its workers.
func New(cfg Config) *Queue {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		cfg:        cfg,
		baseCtx:    ctx,
		cancelBase: cancel,
		pending:    make(chan *Job, cfg.Depth),
		events:     newEvents(cfg.EventRing),
		jobs:       make(map[string]*Job),
	}
	q.stats.Depth = cfg.Depth
	q.stats.Workers = cfg.Workers
	for i := 0; i < cfg.Workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	if cfg.ExpireAfter > 0 {
		q.sweepStop = make(chan struct{})
		q.sweepDone = make(chan struct{})
		go q.sweeper()
	}
	return q
}

// sweeper periodically evicts terminal jobs older than ExpireAfter. The
// tick is a quarter of the TTL (clamped to [10ms, 1m]), so a job
// overstays its retention by at most ~25%.
func (q *Queue) sweeper() {
	defer close(q.sweepDone)
	tick := q.cfg.ExpireAfter / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > time.Minute {
		tick = time.Minute
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-q.sweepStop:
			return
		case now := <-t.C:
			q.expire(now)
		}
	}
}

// expire evicts terminal jobs whose finish time is at least ExpireAfter
// before now, oldest first, and reports how many went. The retention
// list is ordered by finish time (finish appends), so the scan stops at
// the first survivor.
func (q *Queue) expire(now time.Time) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	ttl := q.cfg.ExpireAfter
	if ttl <= 0 {
		return 0
	}
	n := 0
	for len(q.retention) > 0 {
		j, ok := q.jobs[q.retention[0]]
		if !ok { // already gone (should not happen; stay robust)
			q.retention = q.retention[1:]
			continue
		}
		j.mu.Lock()
		expired := now.Sub(j.finished) >= ttl
		if expired {
			// Mark and publish BEFORE removal: a List that collected this
			// job's pointer just before the sweep snapshots StateExpired
			// (and filters it out) instead of briefly reporting the stale
			// done/failed state of a job that is already gone, and event
			// subscribers learn the id was evicted rather than polling
			// into a 404. Result/Err stay intact so a racing reader that
			// already held the job still gets its data.
			j.state = StateExpired
		}
		ev := eventOf(j, StateExpired)
		j.mu.Unlock()
		if !expired {
			break
		}
		q.events.publish(ev)
		delete(q.jobs, j.id)
		q.retention = q.retention[1:]
		q.stats.Expired++
		n++
	}
	return n
}

// Submit enqueues fn and returns its job. It fails fast with ErrQueueFull
// when the backlog is at capacity and ErrClosed after Close.
func (q *Queue) Submit(fn Func) (*Job, error) {
	return q.SubmitLabeled(fn)
}

// SubmitLabeled is Submit with topic labels attached to the job: every
// event the job publishes carries them, so per-topic subscribers (an SSE
// /events?topic= stream, a webhook subscription) see it. Labels do not
// influence the work or its result.
func (q *Queue) SubmitLabeled(fn Func, labels ...string) (*Job, error) {
	return q.SubmitTraced(fn, "", labels...)
}

// SubmitTraced is SubmitLabeled with a request trace ID attached: the
// daemon's /jobs handler passes the trace it opened for the submission
// so the job's envelope can point back at GET /traces/{id}. Like
// labels, the trace ID never influences the work or its result.
func (q *Queue) SubmitTraced(fn Func, traceID string, labels ...string) (*Job, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, ErrClosed
	}
	// Submit is the only sender on q.pending and runs under q.mu, so a
	// length check is a reliable admission test — and doing it before
	// publishing means the queued event precedes the job's visibility to
	// workers, which is what keeps queued < running in sequence order.
	if len(q.pending) >= cap(q.pending) {
		q.stats.Rejected++
		q.mu.Unlock()
		return nil, fmt.Errorf("%w: %d jobs pending", ErrQueueFull, len(q.pending))
	}
	q.seq++
	j := &Job{
		id:        fmt.Sprintf("j%06d", q.seq),
		seq:       q.seq,
		fn:        fn,
		labels:    labels,
		traceID:   traceID,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	q.jobs[j.id] = j
	q.stats.Submitted++
	q.stats.Queued++
	q.events.publish(eventOf(j, StateQueued))
	q.pending <- j // cannot block: admission was checked above
	q.mu.Unlock()
	return j, nil
}

// Events returns the queue's pub/sub manager: every job state transition
// (queued, running, done, failed, expired) is published to it.
func (q *Queue) Events() *Events { return q.events }

// Get returns the job with the given id, if it is still tracked (jobs
// evicted by the retention bound are gone).
func (q *Queue) Get(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return j, ok
}

// List returns a snapshot of every tracked job in submission order,
// optionally filtered by state ("" means all). Jobs evicted by either
// retention bound do not appear.
func (q *Queue) List(filter State) []Snapshot {
	q.mu.Lock()
	jobs := make([]*Job, 0, len(q.jobs))
	for _, j := range q.jobs {
		jobs = append(jobs, j)
	}
	q.mu.Unlock()
	// Sorted by the numeric submission sequence — the zero-padded ids
	// stop sorting lexicographically at the millionth job. Snapshots are
	// taken outside q.mu: finish locks q.mu before j.mu, so holding both
	// here in the other order could deadlock.
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	snaps := make([]Snapshot, 0, len(jobs))
	for _, j := range jobs {
		snap := j.Snapshot()
		// A job the expiry sweep evicted between the collection above and
		// this snapshot reports StateExpired — it is no longer tracked, so
		// it must not be listed (with any filter) as if it still were.
		if snap.State == StateExpired {
			continue
		}
		if filter != "" && snap.State != filter {
			continue
		}
		snaps = append(snaps, snap)
	}
	return snaps
}

// Cancel aborts the job with the given id: a queued job fails immediately
// without running, a running job has its context cancelled. It reports
// whether the job existed and was still cancellable (terminal jobs are
// not).
func (q *Queue) Cancel(id string) bool {
	q.mu.Lock()
	j, ok := q.jobs[id]
	q.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		// Fail in place; the worker that eventually pops the job sees the
		// terminal state and skips it.
		j.canceled = true
		j.mu.Unlock()
		q.finish(j, nil, ErrCanceled)
		return true
	case StateRunning:
		j.canceled = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	default:
		j.mu.Unlock()
		return false
	}
}

// Stats returns a point-in-time summary of the queue.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// RetryAfter suggests, in whole seconds, when a submitter rejected with
// ErrQueueFull should try again: the number of queue-drain rounds ahead
// of it — backlog plus the jobs already running, divided by the worker
// pool — clamped to [1, 30]. The value is a pure function of the queue
// stats (see RetryAfterSeconds), so clients see a backlog-proportional
// hint instead of a constant, and tests can pin it deterministically.
func (q *Queue) RetryAfter() int {
	return RetryAfterSeconds(q.Stats())
}

// RetryAfterSeconds is RetryAfter computed from a stats snapshot.
func RetryAfterSeconds(s Stats) int {
	workers := int64(s.Workers)
	if workers <= 0 {
		workers = 1
	}
	rounds := (s.Queued + s.Running + workers - 1) / workers
	if rounds < 1 {
		rounds = 1
	}
	if rounds > 30 {
		rounds = 30
	}
	return int(rounds)
}

// Close stops the queue: no further Submit succeeds, queued jobs fail as
// cancelled, running jobs have their contexts cancelled, and Close blocks
// until the workers drain. Safe to call more than once.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	close(q.pending)
	q.mu.Unlock()
	q.cancelBase() // aborts running jobs; queued ones fail in the drain below
	q.wg.Wait()
	if q.sweepStop != nil {
		close(q.sweepStop)
		<-q.sweepDone
	}
	// Workers and sweeper have drained: no publisher is left, so the
	// subscriber channels can close and streaming consumers unblock.
	q.events.closeAll()
}

// worker pops jobs until the pending channel drains after Close.
func (q *Queue) worker() {
	defer q.wg.Done()
	for j := range q.pending {
		j.mu.Lock()
		if j.state.Terminal() { // cancelled while queued
			j.mu.Unlock()
			continue
		}
		if err := q.baseCtx.Err(); err != nil {
			// The queue is closing: fail the backlog instead of starting
			// doomed work. This is a shutdown, not a caller cancel, so the
			// job is NOT marked canceled — pollers should see the
			// shutdown shape (an error wrapping context.Canceled without
			// the cancel flag), and Stats.Canceled counts only real
			// Cancel calls.
			j.mu.Unlock()
			q.finish(j, nil, fmt.Errorf("batch: queue closed before job ran: %w", err))
			continue
		}
		ctx, cancel := context.WithCancel(q.baseCtx)
		j.state = StateRunning
		j.started = time.Now()
		j.cancel = cancel
		canceled := j.canceled // Cancel may have raced Submit
		ev := eventOf(j, StateRunning)
		j.mu.Unlock()
		// The terminal event is published by finish, called below on this
		// same goroutine, so a job's running event always precedes it.
		q.events.publish(ev)
		q.gauge(-1, +1)
		if canceled {
			cancel()
		}
		result, err := runSafely(j.fn, ctx)
		cancel()
		q.finish(j, result, err)
	}
}

// runSafely runs fn, converting a panic into a failure so one bad job
// cannot take the worker (and with it the whole pool) down.
func runSafely(fn Func, ctx context.Context) (result []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			result, err = nil, fmt.Errorf("batch: job panicked: %v", r)
		}
	}()
	return fn(ctx)
}

// gauge shifts the queued/running gauges by the given deltas.
func (q *Queue) gauge(dQueued, dRunning int64) {
	q.mu.Lock()
	q.stats.Queued += dQueued
	q.stats.Running += dRunning
	q.mu.Unlock()
}

// finish moves a job to its terminal state, updates the counters and
// evicts the oldest terminal job beyond the retention bound. A cancelled
// job's own error (including a context.Canceled bubbling out of the work)
// is normalised to ErrCanceled so callers see one cancellation shape.
// finish is idempotent: Cancel and the worker can race to it (cancel a
// queued job just as a worker pops it) and only the first call settles
// the job.
func (q *Queue) finish(j *Job, result []byte, err error) {
	q.mu.Lock()
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		q.mu.Unlock()
		return
	}
	wasQueued := j.state == StateQueued
	if err != nil {
		if j.canceled {
			err = ErrCanceled
		}
		j.state = StateFailed
		j.err = err
	} else {
		// A Cancel that lost the race to a successful completion is a
		// no-op: the job is done, the flag is cleared, and the Canceled
		// counter stays an exact subset of Failed.
		j.canceled = false
		j.state = StateDone
		j.result = result
	}
	j.finished = time.Now()
	canceled := j.canceled
	ev := eventOf(j, j.state)
	j.mu.Unlock()
	close(j.done)
	q.events.publish(ev)

	if wasQueued {
		q.stats.Queued--
	} else {
		q.stats.Running--
	}
	if err != nil {
		q.stats.Failed++
	} else {
		q.stats.Done++
	}
	if canceled {
		q.stats.Canceled++
	}
	q.retention = append(q.retention, j.id)
	limit := q.cfg.Retain
	if limit < 0 { // negative retains nothing
		limit = 0
	}
	for len(q.retention) > limit {
		delete(q.jobs, q.retention[0])
		q.retention = q.retention[1:]
	}
	q.mu.Unlock()
}
