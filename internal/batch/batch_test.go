package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitCtx bounds every test wait so a deadlock fails fast instead of
// hanging the suite.
func waitCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestSubmitRunsToDone(t *testing.T) {
	q := New(Config{Workers: 2})
	defer q.Close()
	j, err := q.Submit(func(context.Context) ([]byte, error) { return []byte("out"), nil })
	if err != nil {
		t.Fatal(err)
	}
	snap, err := j.Wait(waitCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateDone || string(snap.Result) != "out" || snap.Err != nil {
		t.Fatalf("snapshot: %+v", snap)
	}
	if snap.Started.Before(snap.Submitted) || snap.Finished.Before(snap.Started) {
		t.Fatalf("timestamps out of order: %+v", snap)
	}
	got, ok := q.Get(j.ID())
	if !ok || got != j {
		t.Fatal("Get lost the job")
	}
	st := q.Stats()
	if st.Submitted != 1 || st.Done != 1 || st.Failed != 0 || st.Queued != 0 || st.Running != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFailedJobKeepsError(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	boom := errors.New("boom")
	j, err := q.Submit(func(context.Context) ([]byte, error) { return nil, boom })
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := j.Wait(waitCtx(t))
	if snap.State != StateFailed || !errors.Is(snap.Err, boom) || snap.Canceled {
		t.Fatalf("snapshot: %+v", snap)
	}
	if st := q.Stats(); st.Failed != 1 || st.Canceled != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestQueueFull(t *testing.T) {
	q := New(Config{Workers: 1, Depth: 1})
	defer q.Close()
	block := make(chan struct{})
	running := make(chan struct{})
	// One job occupies the worker, one fills the backlog.
	first, err := q.Submit(func(context.Context) ([]byte, error) {
		close(running)
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	second, err := q.Submit(func(context.Context) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(func(context.Context) ([]byte, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
	if st := q.Stats(); st.Rejected != 1 || st.Queued != 1 || st.Running != 1 {
		t.Fatalf("stats: %+v", st)
	}
	close(block)
	if snap, _ := first.Wait(waitCtx(t)); snap.State != StateDone {
		t.Fatalf("first: %+v", snap)
	}
	if snap, _ := second.Wait(waitCtx(t)); snap.State != StateDone {
		t.Fatalf("second: %+v", snap)
	}
	// Capacity is free again.
	if _, err := q.Submit(func(context.Context) ([]byte, error) { return nil, nil }); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
}

// TestRetryAfterDerivedFromStats pins the Retry-After contract: the hint
// is a pure, deterministic function of (queued, running, workers) —
// drain rounds ahead of the submitter, clamped to [1, 30] — never a
// constant.
func TestRetryAfterDerivedFromStats(t *testing.T) {
	cases := []struct {
		queued, running int64
		workers         int
		want            int
	}{
		{0, 0, 4, 1},    // idle queue: immediate retry
		{0, 0, 0, 1},    // degenerate worker count clamps to 1
		{1, 1, 1, 2},    // one round draining, one queued
		{4, 2, 2, 3},    // ceil(6/2)
		{5, 2, 2, 4},    // ceil(7/2): remainder rounds up
		{500, 8, 4, 30}, // deep backlog clamps at 30s
	}
	for _, c := range cases {
		s := Stats{Queued: c.queued, Running: c.running, Workers: c.workers}
		if got := RetryAfterSeconds(s); got != c.want {
			t.Errorf("RetryAfterSeconds(queued=%d running=%d workers=%d) = %d, want %d",
				c.queued, c.running, c.workers, got, c.want)
		}
	}

	// The live queue agrees with the snapshot formula as load mounts.
	q := New(Config{Workers: 1, Depth: 2})
	defer q.Close()
	if got := q.RetryAfter(); got != 1 {
		t.Fatalf("idle RetryAfter = %d, want 1", got)
	}
	block := make(chan struct{})
	running := make(chan struct{})
	if _, err := q.Submit(func(context.Context) ([]byte, error) {
		close(running)
		<-block
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-running
	for i := 0; i < 2; i++ {
		if _, err := q.Submit(func(context.Context) ([]byte, error) { return nil, nil }); err != nil {
			t.Fatal(err)
		}
	}
	// workers=1, running=1, queued=2 → 3 drain rounds.
	if got := q.RetryAfter(); got != 3 {
		t.Fatalf("loaded RetryAfter = %d, want 3", got)
	}
	close(block)
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	q := New(Config{Workers: 1, Depth: 2})
	defer q.Close()
	block := make(chan struct{})
	running := make(chan struct{})
	if _, err := q.Submit(func(context.Context) ([]byte, error) {
		close(running)
		<-block
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-running
	var ran atomic.Bool
	victim, err := q.Submit(func(context.Context) ([]byte, error) {
		ran.Store(true)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !q.Cancel(victim.ID()) {
		t.Fatal("cancel of queued job reported no effect")
	}
	snap, _ := victim.Wait(waitCtx(t))
	if snap.State != StateFailed || !snap.Canceled || !errors.Is(snap.Err, context.Canceled) {
		t.Fatalf("snapshot: %+v", snap)
	}
	close(block)
	// Give the worker a chance to (wrongly) pick the cancelled job up.
	time.Sleep(20 * time.Millisecond)
	if ran.Load() {
		t.Fatal("cancelled job still ran")
	}
	if st := q.Stats(); st.Canceled != 1 || st.Failed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCancelRunningJobCancelsContext(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	running := make(chan struct{})
	j, err := q.Submit(func(ctx context.Context) ([]byte, error) {
		close(running)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	if !q.Cancel(j.ID()) {
		t.Fatal("cancel of running job reported no effect")
	}
	snap, _ := j.Wait(waitCtx(t))
	if snap.State != StateFailed || !snap.Canceled || !errors.Is(snap.Err, context.Canceled) {
		t.Fatalf("snapshot: %+v", snap)
	}
}

func TestCancelTerminalAndUnknown(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	j, err := q.Submit(func(context.Context) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	j.Wait(waitCtx(t))
	if q.Cancel(j.ID()) {
		t.Fatal("cancel of done job reported effect")
	}
	if q.Cancel("no-such-job") {
		t.Fatal("cancel of unknown job reported effect")
	}
}

func TestPanickingJobFailsWithoutKillingWorker(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	bad, err := q.Submit(func(context.Context) ([]byte, error) { panic("kaboom") })
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := bad.Wait(waitCtx(t))
	if snap.State != StateFailed || snap.Err == nil {
		t.Fatalf("snapshot: %+v", snap)
	}
	// The pool survived: the next job still runs.
	ok, err := q.Submit(func(context.Context) ([]byte, error) { return []byte("alive"), nil })
	if err != nil {
		t.Fatal(err)
	}
	if snap, _ := ok.Wait(waitCtx(t)); snap.State != StateDone {
		t.Fatalf("post-panic job: %+v", snap)
	}
}

func TestRetentionEvictsOldestTerminal(t *testing.T) {
	q := New(Config{Workers: 1, Retain: 2})
	defer q.Close()
	ids := make([]string, 4)
	for i := range ids {
		j, err := q.Submit(func(context.Context) ([]byte, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		j.Wait(waitCtx(t))
		ids[i] = j.ID()
	}
	if _, ok := q.Get(ids[0]); ok {
		t.Fatal("oldest job survived retention")
	}
	if _, ok := q.Get(ids[3]); !ok {
		t.Fatal("newest job evicted")
	}
}

func TestCloseFailsBacklogAndStopsSubmit(t *testing.T) {
	q := New(Config{Workers: 1, Depth: 4})
	block := make(chan struct{})
	running := make(chan struct{})
	first, err := q.Submit(func(ctx context.Context) ([]byte, error) {
		close(running)
		select {
		case <-block:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	queued, err := q.Submit(func(context.Context) ([]byte, error) { return []byte("never"), nil })
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { q.Close(); close(done) }()
	select {
	case <-done:
	case <-waitCtx(t).Done():
		t.Fatal("Close hung")
	}
	if _, err := q.Submit(func(context.Context) ([]byte, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	if snap := first.Snapshot(); snap.State != StateFailed || !errors.Is(snap.Err, context.Canceled) {
		t.Fatalf("running job after close: %+v", snap)
	}
	// Shutdown failures are not caller cancels: the flag (and with it the
	// Canceled counter and the 499-style labelling upstream) stays unset.
	if snap := queued.Snapshot(); snap.State != StateFailed || !errors.Is(snap.Err, context.Canceled) || snap.Canceled {
		t.Fatalf("queued job after close: %+v", snap)
	}
	if st := q.Stats(); st.Canceled != 0 {
		t.Fatalf("shutdown inflated the canceled counter: %+v", st)
	}
}

// TestCancelLosingRaceToCompletion: a running job whose fn ignores the
// cancel and returns a result anyway settles as done with the canceled
// flag cleared — Canceled stays a subset of Failed.
func TestCancelLosingRaceToCompletion(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	running := make(chan struct{})
	proceed := make(chan struct{})
	j, err := q.Submit(func(ctx context.Context) ([]byte, error) {
		close(running)
		<-proceed
		return []byte("won anyway"), nil // deliberately ignores ctx
	})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	if !q.Cancel(j.ID()) {
		t.Fatal("cancel of running job reported no effect")
	}
	close(proceed)
	snap, _ := j.Wait(waitCtx(t))
	if snap.State != StateDone || snap.Canceled || string(snap.Result) != "won anyway" {
		t.Fatalf("snapshot: %+v", snap)
	}
	if st := q.Stats(); st.Canceled != 0 || st.Done != 1 || st.Failed != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNegativeRetainKeepsNothing(t *testing.T) {
	q := New(Config{Workers: 1, Retain: -1})
	defer q.Close()
	j, err := q.Submit(func(context.Context) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	j.Wait(waitCtx(t))
	if _, ok := q.Get(j.ID()); ok {
		t.Fatal("Retain<0 kept a terminal job")
	}
}

// TestConcurrentChurn hammers the queue from many goroutines under the
// race detector: submits, cancels and polls interleaving freely.
func TestConcurrentChurn(t *testing.T) {
	q := New(Config{Workers: 4, Depth: 64, Retain: 16})
	defer q.Close()
	var wg sync.WaitGroup
	var completed atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				j, err := q.Submit(func(ctx context.Context) ([]byte, error) {
					select {
					case <-time.After(time.Duration(i%3) * time.Millisecond):
					case <-ctx.Done():
						return nil, ctx.Err()
					}
					return []byte(fmt.Sprintf("w%d-%d", w, i)), nil
				})
				if errors.Is(err, ErrQueueFull) {
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				if i%4 == 0 {
					q.Cancel(j.ID())
				}
				if snap, err := j.Wait(waitCtx(t)); err == nil && snap.State == StateDone {
					completed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	st := q.Stats()
	if st.Queued != 0 || st.Running != 0 {
		t.Fatalf("gauges nonzero after drain: %+v", st)
	}
	if st.Done != completed.Load() {
		t.Fatalf("done %d != observed completions %d", st.Done, completed.Load())
	}
	if st.Done+st.Failed != st.Submitted {
		t.Fatalf("terminal %d+%d != submitted %d", st.Done, st.Failed, st.Submitted)
	}
}

func TestListFilter(t *testing.T) {
	q := New(Config{Workers: 1, Depth: 8})
	defer q.Close()
	block := make(chan struct{})
	jr, err := q.Submit(func(ctx context.Context) ([]byte, error) {
		<-block
		return []byte("r"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the first job occupies the worker.
	waitState(t, jr, StateRunning)
	jq, err := q.Submit(func(ctx context.Context) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got := q.List(""); len(got) != 2 || got[0].ID != jr.ID() || got[1].ID != jq.ID() {
		t.Fatalf("List(all) = %+v", got)
	}
	if got := q.List(StateQueued); len(got) != 1 || got[0].ID != jq.ID() {
		t.Fatalf("List(queued) = %+v", got)
	}
	if got := q.List(StateDone); len(got) != 0 {
		t.Fatalf("List(done) = %+v", got)
	}
	close(block)
	waitState(t, jr, StateDone)
	waitState(t, jq, StateDone)
	if got := q.List(StateDone); len(got) != 2 {
		t.Fatalf("List(done) after completion = %+v", got)
	}
}

func TestExpireEvictsOldTerminalJobs(t *testing.T) {
	q := New(Config{Workers: 1, Depth: 8, ExpireAfter: 25 * time.Millisecond})
	defer q.Close()
	j, err := q.Submit(func(ctx context.Context) ([]byte, error) { return []byte("x"), nil })
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := q.Get(j.ID()); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal job never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := q.Stats(); st.Expired == 0 {
		t.Errorf("Stats.Expired = %d, want > 0", st.Expired)
	}
	if got := q.List(""); len(got) != 0 {
		t.Errorf("expired job still listed: %+v", got)
	}
}

func TestExpireSparesLiveAndFreshJobs(t *testing.T) {
	q := New(Config{Workers: 1, Depth: 8})
	defer q.Close()
	q.cfg.ExpireAfter = time.Hour // drive expire by hand
	block := make(chan struct{})
	running, err := q.Submit(func(ctx context.Context) ([]byte, error) {
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	done, err := q.Submit(func(ctx context.Context) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if n := q.expire(time.Now()); n != 0 {
		t.Fatalf("expire evicted %d fresh jobs", n)
	}
	close(block)
	waitState(t, running, StateDone)
	waitState(t, done, StateDone)
	if n := q.expire(time.Now().Add(2 * time.Hour)); n != 2 {
		t.Fatalf("expire evicted %d jobs, want 2", n)
	}
	if _, ok := q.Get(running.ID()); ok {
		t.Error("expired job still tracked")
	}
}

// waitState polls a job until it reaches the wanted state.
func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := j.Snapshot()
		if snap.State == want {
			return
		}
		if snap.State.Terminal() {
			t.Fatalf("job %s reached %s, want %s", j.ID(), snap.State, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", j.ID(), snap.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}
