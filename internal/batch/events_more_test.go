package batch

import (
	"context"
	"testing"
	"time"
)

// TestEventsLastSeqAndDone covers the cursor accessors a poller uses to
// bootstrap a ?after= resume, and the Job.Done channel the bulk-intake
// waiters select on.
func TestEventsLastSeqAndDone(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	if got := q.Events().LastSeq(); got != 0 {
		t.Fatalf("LastSeq before any event = %d, want 0", got)
	}
	j, err := q.Submit(func(context.Context) ([]byte, error) { return []byte("x"), nil })
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("job never finished")
	}
	// queued, running, done — three transitions, whatever their global
	// sequence numbers, leave the cursor at the last one.
	if got := q.Events().LastSeq(); got < 3 {
		t.Fatalf("LastSeq after lifecycle = %d, want >= 3", got)
	}
	if snap := j.Snapshot(); snap.State != StateDone {
		t.Fatalf("state after Done closed = %s, want done", snap.State)
	}
}
