package batch

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// collectUntilTerminal drains a subscription until it delivers a
// terminal-state event for the given job (or the wait context dies).
func collectUntilTerminal(t *testing.T, ctx context.Context, sub *Subscription, jobID string) []Event {
	t.Helper()
	var events []Event
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				t.Fatalf("subscription closed before %s turned terminal (got %v)", jobID, events)
			}
			events = append(events, ev)
			if ev.JobID == jobID && ev.State.Terminal() {
				return events
			}
		case <-ctx.Done():
			t.Fatalf("no terminal event for %s (got %v)", jobID, events)
		}
	}
}

// TestEventsLifecycleOrder pins the core push contract: a per-job
// subscriber observes queued → running → done exactly once, in order,
// with strictly increasing sequence numbers.
func TestEventsLifecycleOrder(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	// Subscribing to everything before submission catches the queued
	// event; the job filter is checked separately below.
	sub := q.Events().Subscribe("", "", 16)
	defer sub.Close()
	j, err := q.Submit(func(context.Context) ([]byte, error) { return []byte("x"), nil })
	if err != nil {
		t.Fatal(err)
	}
	events := collectUntilTerminal(t, waitCtx(t), sub, j.ID())
	want := []State{StateQueued, StateRunning, StateDone}
	if len(events) != len(want) {
		t.Fatalf("got %d events %v, want states %v", len(events), events, want)
	}
	var lastSeq uint64
	for i, ev := range events {
		if ev.State != want[i] || ev.JobID != j.ID() {
			t.Fatalf("event %d = %+v, want state %s for %s", i, ev, want[i], j.ID())
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("event %d seq %d not increasing past %d", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
	}
}

// TestEventsFailedCarriesReason: a failing job publishes a failed event
// with the error text, and a cancelled one is additionally marked.
func TestEventsFailedCarriesReason(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	sub := q.Events().Subscribe("", "", 16)
	defer sub.Close()
	j, err := q.Submit(func(context.Context) ([]byte, error) { return nil, fmt.Errorf("boom") })
	if err != nil {
		t.Fatal(err)
	}
	events := collectUntilTerminal(t, waitCtx(t), sub, j.ID())
	last := events[len(events)-1]
	if last.State != StateFailed || last.Error != "boom" || last.Canceled {
		t.Fatalf("failed event = %+v", last)
	}

	started := make(chan struct{})
	jc, err := q.Submit(func(ctx context.Context) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	q.Cancel(jc.ID())
	events = collectUntilTerminal(t, waitCtx(t), sub, jc.ID())
	last = events[len(events)-1]
	if last.State != StateFailed || !last.Canceled {
		t.Fatalf("cancelled event = %+v", last)
	}
}

// TestEventsTopicFilter: a topic subscription sees exactly the jobs
// labelled with its topic, and events carry the labels.
func TestEventsTopicFilter(t *testing.T) {
	q := New(Config{Workers: 2})
	defer q.Close()
	sub := q.Events().Subscribe("", "red", 32)
	defer sub.Close()
	fn := func(context.Context) ([]byte, error) { return nil, nil }
	red, err := q.SubmitLabeled(fn, "red", "hot")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.SubmitLabeled(fn, "blue"); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(fn); err != nil {
		t.Fatal(err)
	}
	events := collectUntilTerminal(t, waitCtx(t), sub, red.ID())
	for _, ev := range events {
		if ev.JobID != red.ID() {
			t.Fatalf("topic=red stream leaked event for %s: %+v", ev.JobID, ev)
		}
		if len(ev.Labels) != 2 || ev.Labels[0] != "red" || ev.Labels[1] != "hot" {
			t.Fatalf("event labels = %v, want [red hot]", ev.Labels)
		}
	}
	if snap := red.Snapshot(); len(snap.Labels) != 2 || snap.Labels[0] != "red" {
		t.Fatalf("snapshot labels = %v", snap.Labels)
	}
}

// TestEventsSlowConsumerDrop pins the drop-and-mark policy under -race:
// a subscriber with a one-slot buffer that never reads while many jobs
// flow is marked dropped (never blocking the queue), and a ring replay
// from its last seen sequence number recovers every missed event.
func TestEventsSlowConsumerDrop(t *testing.T) {
	q := New(Config{Workers: 4, Depth: 64})
	defer q.Close()
	sub := q.Events().Subscribe("", "", 1)
	defer sub.Close()
	const jobs = 20
	for i := 0; i < jobs; i++ {
		j, err := q.Submit(func(context.Context) ([]byte, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(waitCtx(t)); err != nil {
			t.Fatal(err)
		}
	}
	dropped := sub.Dropped()
	if dropped == 0 {
		t.Fatalf("one-slot subscriber missed nothing across %d jobs (3 events each)", jobs)
	}
	// The one buffered event is the subscriber's last delivery; everything
	// after it must be recoverable from the ring.
	first := <-sub.C()
	recovered := q.Events().Replay(first.Seq, "", "")
	total := q.Events().Stats()
	if got := uint64(len(recovered)) + first.Seq; got != total.LastSeq {
		t.Fatalf("replay from seq %d returned %d events, want coverage to %d",
			first.Seq, len(recovered), total.LastSeq)
	}
	for i, ev := range recovered {
		if ev.Seq != first.Seq+uint64(i)+1 {
			t.Fatalf("replay gap at %d: seq %d", i, ev.Seq)
		}
	}
	if total.Dropped < dropped {
		t.Fatalf("manager dropped counter %d < subscription's %d", total.Dropped, dropped)
	}
}

// TestEventsRingBound: the replay ring is bounded — old events fall off
// and OldestRetained reports where coverage starts.
func TestEventsRingBound(t *testing.T) {
	q := New(Config{Workers: 1, EventRing: 8})
	defer q.Close()
	for i := 0; i < 10; i++ {
		j, err := q.Submit(func(context.Context) ([]byte, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(waitCtx(t)); err != nil {
			t.Fatal(err)
		}
	}
	st := q.Events().Stats()
	if st.RingLen != 8 {
		t.Fatalf("ring holds %d events, want 8", st.RingLen)
	}
	oldest := q.Events().OldestRetained()
	if oldest != st.LastSeq-7 {
		t.Fatalf("oldest retained %d, want %d", oldest, st.LastSeq-7)
	}
	if got := q.Events().Replay(0, "", ""); len(got) != 8 || got[0].Seq != oldest {
		t.Fatalf("full replay returned %d events from %d", len(got), got[0].Seq)
	}
}

// TestExpirePublishesBeforeRemoval pins the retention-race fix: a swept
// job is marked expired and its event published before it leaves the
// tracking map, so a List racing the sweep never reports the stale
// done-state of a job that is already gone, and subscribers see the
// eviction.
func TestExpirePublishesBeforeRemoval(t *testing.T) {
	q := New(Config{Workers: 1, ExpireAfter: time.Hour})
	defer q.Close()
	sub := q.Events().Subscribe("", "", 16)
	defer sub.Close()
	j, err := q.Submit(func(context.Context) ([]byte, error) { return []byte("r"), nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	collectUntilTerminal(t, waitCtx(t), sub, j.ID())

	// The mid-sweep interleaving, deterministically: List collects its
	// job pointers (here: Get), the sweep runs, then the stale pointer is
	// snapshotted — it must report expired, not done.
	stale, ok := q.Get(j.ID())
	if !ok {
		t.Fatal("job vanished before the sweep")
	}
	if n := q.expire(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Fatalf("expire evicted %d jobs, want 1", n)
	}
	snap := stale.Snapshot()
	if snap.State != StateExpired {
		t.Fatalf("swept job snapshots %q, want %q", snap.State, StateExpired)
	}
	if string(snap.Result) != "r" {
		t.Fatalf("sweep destroyed the result: %q", snap.Result)
	}
	if _, ok := q.Get(j.ID()); ok {
		t.Fatal("swept job still tracked")
	}
	if l := q.List(""); len(l) != 0 {
		t.Fatalf("List after sweep = %v, want empty", l)
	}
	select {
	case ev := <-sub.C():
		if ev.State != StateExpired || ev.JobID != j.ID() {
			t.Fatalf("post-sweep event = %+v, want expired for %s", ev, j.ID())
		}
	case <-waitCtx(t).Done():
		t.Fatal("no expired event published")
	}
	if st := q.Stats(); st.Expired != 1 {
		t.Fatalf("Stats.Expired = %d, want 1", st.Expired)
	}
}

// TestEventsSubscriptionCloseAndQueueClose: closing a subscription stops
// delivery; closing the queue closes every remaining channel.
func TestEventsSubscriptionCloseAndQueueClose(t *testing.T) {
	q := New(Config{Workers: 1})
	sub := q.Events().Subscribe("", "", 4)
	sub.Close()
	sub.Close() // idempotent
	if _, err := q.Submit(func(context.Context) ([]byte, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	remaining := q.Events().Subscribe("", "", 4)
	q.Close()
	for {
		if _, ok := <-remaining.C(); !ok {
			break
		}
	}
	if st := q.Events().Stats(); st.Subscribers != 0 {
		t.Fatalf("%d subscribers survived Close", st.Subscribers)
	}
	// A post-Close subscription is born closed instead of leaking.
	if _, ok := <-q.Events().Subscribe("", "", 1).C(); ok {
		t.Fatal("post-Close subscription delivered an event")
	}
}

// BenchmarkPublish measures the publish hot path — sequence assignment,
// ring append, fan-out to four subscribers (with drainers, so the happy
// send path dominates rather than the drop branch).
func BenchmarkPublish(b *testing.B) {
	e := newEvents(1024)
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		sub := e.Subscribe("", "", 4096)
		go func() {
			for {
				select {
				case <-sub.C():
				case <-stop:
					return
				}
			}
		}()
	}
	ev := Event{JobID: "j000001", State: StateRunning, Labels: []string{"bench"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.publish(ev)
	}
	b.StopTimer()
	close(stop)
}
