package batch

import (
	"sync"
	"sync/atomic"
	"time"
)

// The event layer turns the queue's pull-driven lifecycle into a
// push-driven one, mirroring the IPPS manager/topic split: the queue is
// the publisher, an Events manager assigns every job state transition a
// globally monotonic sequence number, retains the recent past in a
// bounded ring for replay, and fans each event out to per-job and
// per-topic subscribers over buffered channels. Delivery is best-effort
// with drop-and-mark semantics: a subscriber that cannot keep up never
// blocks a publisher — the event is dropped for that subscriber, the
// drop is counted on the subscription, and the subscriber resynchronises
// by replaying the ring from its last seen sequence number. Per-job
// ordering is exact: a job's events are published in transition order,
// so any subscriber that keeps up (or replays after a drop, while the
// gap is still inside the ring) observes queued → running → done/failed
// exactly once, in order.

// StateExpired is the pseudo-state published when the retention sweeper
// evicts a terminal job: the job's last event, emitted before the job is
// removed from tracking, so watchers learn the id is gone rather than
// polling into a 404. It is also the state a swept job's Snapshot
// reports, which is what keeps List honest mid-sweep (see expire).
const StateExpired State = "expired"

// Event is one job state transition, as published to subscribers.
type Event struct {
	// Seq is the queue-global monotonic sequence number; SSE clients use
	// it as the event id and replay from it after a reconnect.
	Seq   uint64 `json:"seq"`
	JobID string `json:"job"`
	// State is the state the job just entered: queued, running, done,
	// failed, or expired.
	State State `json:"state"`
	// Canceled marks a failed event caused by Cancel.
	Canceled bool `json:"canceled,omitempty"`
	// Error carries a failed event's reason.
	Error string `json:"error,omitempty"`
	// Labels are the job's topics (see SubmitLabeled).
	Labels []string  `json:"labels,omitempty"`
	Time   time.Time `json:"time"`
}

// matches reports whether the event passes a job/topic filter ("" = any).
func (ev Event) matches(jobID, topic string) bool {
	if jobID != "" && ev.JobID != jobID {
		return false
	}
	if topic != "" {
		for _, l := range ev.Labels {
			if l == topic {
				return true
			}
		}
		return false
	}
	return true
}

// EventStats summarises the event layer for /metrics.
type EventStats struct {
	// Published counts every event the queue emitted; LastSeq is the
	// sequence number of the newest one (0 = none yet).
	Published int64  `json:"published"`
	LastSeq   uint64 `json:"last_seq"`
	// Dropped counts subscriber-side drops: events a full subscription
	// buffer could not take (each drop is also counted on its
	// subscription, which is what triggers a replay resync).
	Dropped int64 `json:"dropped"`
	// Subscribers is the current subscription count; RingLen is how many
	// events the replay ring currently retains.
	Subscribers int `json:"subscribers"`
	RingLen     int `json:"ring_len"`
}

// Events is the queue's pub/sub manager. Obtain it with Queue.Events;
// the queue publishes, subscribers watch.
type Events struct {
	mu        sync.Mutex
	seq       uint64
	ring      []Event // newest last; bounded by ringCap, contiguous seqs
	ringCap   int
	subs      map[*Subscription]struct{}
	closed    bool
	published int64
	dropped   int64
}

func newEvents(ringCap int) *Events {
	if ringCap <= 0 {
		ringCap = 1024
	}
	return &Events{ringCap: ringCap, subs: make(map[*Subscription]struct{})}
}

// Subscription is one subscriber's buffered view of the event stream,
// filtered by job id and/or topic. Read from C; check Dropped after a
// slow spell and replay to resynchronise; Close when done.
type Subscription struct {
	events  *Events
	ch      chan Event
	jobID   string
	topic   string
	dropped atomic.Int64
}

// C is the delivery channel. It is closed when the queue shuts down.
func (s *Subscription) C() <-chan Event { return s.ch }

// Dropped returns how many events this subscription missed because its
// buffer was full, and resets the counter — so a caller that replays the
// ring after a non-zero answer starts the next accounting period clean.
func (s *Subscription) Dropped() int64 { return s.dropped.Swap(0) }

// Close detaches the subscription and closes its channel.
func (s *Subscription) Close() {
	e := s.events
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.subs[s]; !ok {
		return
	}
	delete(e.subs, s)
	close(s.ch)
}

// Subscribe registers a subscriber for events matching jobID and/or
// topic ("" = any). buf bounds the delivery channel (0 = 64): when it is
// full the publisher drops the event for this subscriber and marks the
// subscription instead of blocking.
func (e *Events) Subscribe(jobID, topic string, buf int) *Subscription {
	if buf <= 0 {
		buf = 64
	}
	s := &Subscription{events: e, ch: make(chan Event, buf), jobID: jobID, topic: topic}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		close(s.ch)
		return s
	}
	e.subs[s] = struct{}{}
	return s
}

// publish assigns the next sequence number, stores the event in the
// replay ring and fans it out. Called by the queue with its own ordering
// guarantees (a job's transitions are published in order); holding e.mu
// across assignment and fan-out is what makes sequence order and
// delivery order agree on every channel.
func (e *Events) publish(ev Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.seq++
	ev.Seq = e.seq
	e.published++
	e.ring = append(e.ring, ev)
	if len(e.ring) > e.ringCap {
		// Trim in chunks so appends stay amortised O(1).
		e.ring = append(e.ring[:0:0], e.ring[len(e.ring)-e.ringCap:]...)
	}
	for s := range e.subs {
		if !ev.matches(s.jobID, s.topic) {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			e.dropped++
		}
	}
}

// Replay returns the retained events with Seq > after that match the
// filter, in sequence order. The ring is bounded: events older than its
// capacity are gone, so a subscriber that lagged beyond it sees a gap —
// the trade the drop-and-mark policy makes to keep publishers wait-free.
// OldestRetained reports where coverage starts.
func (e *Events) Replay(after uint64, jobID, topic string) []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []Event
	for _, ev := range e.ring {
		if ev.Seq > after && ev.matches(jobID, topic) {
			out = append(out, ev)
		}
	}
	return out
}

// OldestRetained returns the smallest sequence number still in the
// replay ring (0 when the ring is empty): a reconnecting client whose
// Last-Event-ID is older than this minus one cannot be replayed
// completely.
func (e *Events) OldestRetained() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.ring) == 0 {
		return 0
	}
	return e.ring[0].Seq
}

// LastSeq returns the newest assigned sequence number (0 = none yet).
func (e *Events) LastSeq() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seq
}

// Stats returns a point-in-time summary of the event layer.
func (e *Events) Stats() EventStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EventStats{
		Published:   e.published,
		LastSeq:     e.seq,
		Dropped:     e.dropped,
		Subscribers: len(e.subs),
		RingLen:     len(e.ring),
	}
}

// closeAll ends the stream: every subscription channel is closed (after
// this no publish succeeds). Called by Queue.Close once the workers have
// drained, so no publisher is mid-flight.
func (e *Events) closeAll() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	for s := range e.subs {
		delete(e.subs, s)
		close(s.ch)
	}
}

// eventOf renders a job's current (locked) fields as an event. Callers
// hold j.mu or know the job is no longer mutating.
func eventOf(j *Job, state State) Event {
	ev := Event{
		JobID:    j.id,
		State:    state,
		Canceled: j.canceled,
		Labels:   j.labels,
		Time:     time.Now(),
	}
	if state == StateFailed && j.err != nil {
		ev.Error = j.err.Error()
	}
	return ev
}
