module antlayer

go 1.24
